package solver

import (
	"context"
	"fmt"
	"time"

	"repro/internal/agents"
	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/decode"
	"repro/internal/hybrid"
	"repro/internal/island"
	"repro/internal/qga"
	"repro/internal/shop"
	"repro/internal/shopga"
)

// engineModel dispatches one generic runner over the three genome
// families. Go interfaces cannot carry generic methods, so each model
// registers explicit instantiations of its runner; the registry and Spec
// stay entirely non-generic.
type engineModel struct {
	name string
	seq  func(ctx context.Context, run *Run, enc encoding[[]int]) (*Result, error)
	keys func(ctx context.Context, run *Run, enc encoding[[]float64]) (*Result, error)
	flex func(ctx context.Context, run *Run, enc encoding[shopga.FlexGenome]) (*Result, error)
}

// Name implements Model.
func (m engineModel) Name() string { return m.name }

// Solve implements Model: build the encoding for the resolved genome
// family and hand off to the instantiated runner.
func (m engineModel) Solve(ctx context.Context, run *Run) (*Result, error) {
	switch run.Encoding {
	case EncKeys:
		enc, err := keysEncoding(run)
		if err != nil {
			return nil, err
		}
		return m.keys(ctx, run, enc)
	case EncFlex:
		enc, err := flexEncoding(run)
		if err != nil {
			return nil, err
		}
		return m.flex(ctx, run, enc)
	default: // EncSeq, EncPerm
		enc, err := seqEncoding(run)
		if err != nil {
			return nil, err
		}
		return m.seq(ctx, run, enc)
	}
}

func init() {
	Register(engineModel{"serial", runSerial[[]int], runSerial[[]float64], runSerial[shopga.FlexGenome]})
	Register(engineModel{"ms", runMasterSlave[[]int], runMasterSlave[[]float64], runMasterSlave[shopga.FlexGenome]})
	Register(engineModel{"island", runIsland[[]int], runIsland[[]float64], runIsland[shopga.FlexGenome]})
	Register(engineModel{"cellular", runCellular[[]int], runCellular[[]float64], runCellular[shopga.FlexGenome]})
	Register(engineModel{"hybrid", runHybrid[[]int], runHybrid[[]float64], runHybrid[shopga.FlexGenome]})
	Register(engineModel{"agents", runAgents[[]int], runAgents[[]float64], runAgents[shopga.FlexGenome]})
	Register(qgaModel{})
}

// engineConfig maps Spec params and budget onto a core.Config.
func engineConfig[G any](run *Run, enc encoding[G]) core.Config[G] {
	p := run.Spec.Params
	return core.Config[G]{
		Pop:           p.Pop,
		Elite:         p.Elite,
		CrossoverRate: p.CrossoverRate,
		MutationRate:  p.MutationRate,
		Ops:           enc.ops,
		Term:          run.termination(),
		RecordHistory: run.Spec.Trace,
	}
}

// islandCount returns the configured island/grid/agent count.
func islandCount(run *Run, def int) int {
	if n := run.Spec.Params.Islands; n > 0 {
		return n
	}
	return def
}

// subPop splits the total population over n demes, at least 2 each.
func subPop(run *Run, n int) int {
	sp := run.Spec.Params.Pop / n
	if sp < 2 {
		sp = 2
	}
	return sp
}

// interval returns the migration interval.
func interval(run *Run, def int) int {
	if v := run.Spec.Params.Interval; v > 0 {
		return v
	}
	return def
}

// epochs converts the generation budget into migration epochs.
func epochs(run *Run, interval int) int {
	e := run.Spec.Budget.Generations / interval
	if e < 1 {
		e = 1
	}
	return e
}

func topologyByName(name string) (island.Topology, error) {
	switch name {
	case "", "ring":
		return island.Ring{}, nil
	case "bi-ring":
		return island.BiRing{}, nil
	case "torus":
		return island.Torus2D{}, nil
	case "full":
		return island.FullyConnected{}, nil
	case "star":
		return island.Star{}, nil
	case "hypercube":
		return island.Hypercube{}, nil
	default:
		return nil, fmt.Errorf("solver: unknown topology %q", name)
	}
}

func neighborhoodByName(name string) (cellular.Neighborhood, error) {
	switch name {
	case "", "l5":
		return cellular.L5, nil
	case "c9":
		return cellular.C9, nil
	case "l9":
		return cellular.L9, nil
	default:
		return cellular.L5, fmt.Errorf("solver: unknown neighborhood %q", name)
	}
}

// gridDims returns the cellular grid dimensions: explicit params (a
// missing dimension is derived so the grid still holds the population),
// the model's default side, or the smallest square holding the
// configured population.
func gridDims(run *Run, defSide int) (w, h int) {
	p := run.Spec.Params
	other := func(dim int) int {
		if defSide > 0 {
			return defSide
		}
		o := (p.Pop + dim - 1) / dim
		if o < 1 {
			o = 1
		}
		return o
	}
	switch {
	case p.Width > 0 && p.Height > 0:
		return p.Width, p.Height
	case p.Width > 0:
		return p.Width, other(p.Width)
	case p.Height > 0:
		return other(p.Height), p.Height
	case defSide > 0:
		return defSide, defSide
	}
	side := 1
	for side*side < p.Pop {
		side++
	}
	return side, side
}

// coreResult converts a core.Result into the unified Result.
func coreResult[G any](enc encoding[G], res core.Result[G]) *Result {
	out := &Result{
		BestObjective: res.Best.Obj,
		Evaluations:   res.Evaluations,
		Generations:   res.Generations,
		Schedule:      enc.schedule(res.Best.Genome),
	}
	for _, gs := range res.History {
		out.Trace = append(out.Trace, TracePoint{
			Generation: gs.Generation, Evaluations: gs.Evaluations, BestObj: gs.BestSoFar,
		})
	}
	return out
}

// runEngine is the shared body of the engine-driven models (serial, ms):
// build the engine, optionally warm-start it from a checkpoint, run, and
// convert the result. It is also where the checkpoint seam materialises:
// with saving configured, the per-generation hook snapshots the engine
// every ck.every generations. The engine is built fresh even when
// resuming — core.New's construction draws and initial evaluations are
// then overwritten wholesale by Restore, whose RNG states make the
// resumed trajectory bit-identical to the uninterrupted one.
func runEngine[G any](run *Run, enc encoding[G], workers int) (*Result, error) {
	cfg := engineConfig(run, enc)
	cfg.Workers = workers
	genHook := run.genHook()
	cfg.OnGeneration = genHook
	var eng *core.Engine[G]
	if ck := run.ck; ck.active() {
		var baseElapsed int64
		if ck.resume != nil {
			baseElapsed = ck.resume.ElapsedMS
		}
		start := time.Now()
		every, save := ck.every, ck.save
		// eng is captured before assignment: the engine only invokes the
		// hook from Step, after New returned.
		cfg.OnGeneration = func(gs core.GenStats) {
			if genHook != nil {
				genHook(gs)
			}
			if gs.Generation%every == 0 {
				cp := packCheckpoint(run, enc, eng.Snapshot())
				cp.ElapsedMS = baseElapsed + time.Since(start).Milliseconds()
				save(cp)
			}
		}
	}
	eng = core.New(enc.problem, run.RNG, cfg)
	defer eng.Close()
	if ck := run.ck; ck != nil && ck.resume != nil {
		snap, err := unpackSnapshot(run, enc, ck.resume)
		if err != nil {
			return nil, err
		}
		if err := eng.Restore(snap); err != nil {
			return nil, err
		}
	}
	res := eng.Run()
	return coreResult(enc, res), nil
}

// runSerial is the panmictic Table II GA.
func runSerial[G any](_ context.Context, run *Run, enc encoding[G]) (*Result, error) {
	return runEngine(run, enc, 0)
}

// runMasterSlave is Table III evolved into the engine's sharded generation
// pipeline: persistent workers each own contiguous shards of the next
// generation and run selection → crossover → mutation → evaluation for
// them end-to-end, drawing from per-shard RNG substreams. The survey's
// defining Table III property — parallelisation does not change the
// algorithm — survives in its modern form: the trajectory is bit-identical
// for ANY workers value, 1 included (TestMasterSlaveWorkerInvariance), it
// just no longer coincides with the serial model's master-path trajectory.
func runMasterSlave[G any](_ context.Context, run *Run, enc encoding[G]) (*Result, error) {
	workers := run.Spec.Params.Workers
	if workers <= 0 {
		workers = 4
	}
	return runEngine(run, enc, workers)
}

// runIsland is Table V: the coarse-grained multi-deme model. When the
// spec carries federation shard coordinates and the run has an exchange,
// each migration epoch extends across the node boundary: local elites are
// packed onto the wire, inbound migrants are unpacked through the same
// per-encoding validators as checkpoints (damaged migrants are rejected,
// never decoded blind) and injected in peer-rank order.
func runIsland[G any](ctx context.Context, run *Run, enc encoding[G]) (*Result, error) {
	n := islandCount(run, 4)
	iv := interval(run, 5)
	topo, err := topologyByName(run.Spec.Params.Topology)
	if err != nil {
		return nil, err
	}
	b := run.Spec.Budget
	icfg := island.Config[G]{
		Islands:  n,
		SubPop:   subPop(run, n),
		Interval: iv,
		Migrants: run.Spec.Params.Migrants,
		Epochs:   epochs(run, iv),
		Topology: topo,
		Workers:  run.Spec.Params.Workers,
		Engine:   engineConfig(run, enc),
		Problem:  func(int) core.Problem[G] { return enc.problem },
		Target:   b.Target, TargetSet: b.TargetSet,
		Stop: run.stop,
	}
	fed := run.exchange != nil && run.Spec.Params.FedKey != ""
	ckActive := run.ck.active()

	// The epoch observer is also the checkpoint seam: island state only
	// sits at a resumable boundary between epochs, so snapshots are taken
	// from OnEpoch (which runs on the model's goroutine, after the epoch's
	// island goroutines joined). A federated shard snapshots EVERY epoch —
	// shardCP is what the next ExchangeMigrants piggybacks for the owner's
	// failover — while the durability seam saves on its generation cadence
	// converted to epochs.
	var mdl *island.Model[G]
	var shardCP *Checkpoint
	var baseElapsed int64
	if run.ck != nil && run.ck.resume != nil {
		baseElapsed = run.ck.resume.ElapsedMS
	}
	saveEvery := 1
	if ckActive {
		saveEvery = run.ck.every / iv
		if saveEvery < 1 {
			saveEvery = 1
		}
	}
	start := time.Now()
	if run.emit != nil || fed || ckActive {
		icfg.OnEpoch = func(es island.EpochStats) {
			if run.emit != nil {
				run.observeEpoch(es.Epoch, es.Generation, es.Islands, es.BestObj, migrationEdges(es.Exchanges))
			}
			doSave := ckActive && (es.Epoch+1)%saveEvery == 0
			if !fed && !doSave {
				return
			}
			cp := packIslandCheckpoint(run, enc, mdl.Snapshot())
			cp.ElapsedMS = baseElapsed + time.Since(start).Milliseconds()
			if fed {
				shardCP = cp
			}
			if doSave {
				// The save sink owns its checkpoint (the Service stamps
				// EventSeq on it); give it a copy so the shard's wire copy
				// stays immutable.
				cpCopy := *cp
				run.ck.save(&cpCopy)
			}
		}
	}
	if fed {
		ex, key, rank := run.exchange, run.Spec.Params.FedKey, run.Spec.Params.FedRank
		ex.ShardStarted(key, rank, run.Spec.Params.FedNodes, run.Spec.Params.FedEpochTimeoutMS)
		defer ex.ShardFinished(key, rank)
		icfg.Exchange = func(epoch int, elites []core.Individual[G]) []G {
			out := make([]Migrant, len(elites))
			for i, e := range elites {
				out[i] = Migrant{Genome: enc.pack(e.Genome), Obj: e.Obj}
			}
			rep := ex.ExchangeMigrants(ctx, key, rank, epoch, out, shardCP)
			for _, p := range rep.Degraded {
				run.observeDegraded(p, epoch)
			}
			gs := make([]G, 0, len(rep.In))
			for _, mg := range rep.In {
				g, uerr := enc.unpack(mg.Genome)
				if uerr != nil {
					ex.MigrantRejected(key)
					continue
				}
				gs = append(gs, g)
			}
			return gs
		}
	}
	mdl = island.New(run.RNG, icfg)
	if run.ck != nil && run.ck.resume != nil {
		snap, uerr := unpackIslandSnapshot(run, enc, run.ck.resume)
		if uerr != nil {
			return nil, uerr
		}
		if rerr := mdl.Restore(snap); rerr != nil {
			return nil, rerr
		}
		if fed {
			// A resumed failover shard re-offers its resume point until the
			// first fresh epoch snapshot replaces it, so a second node loss
			// still finds a checkpoint at the owner.
			shardCP = run.ck.resume
		}
	}
	res := mdl.Run()
	out := &Result{
		BestObjective: res.Best.Obj,
		Evaluations:   res.Evaluations,
		Generations:   res.Generations,
		Schedule:      enc.schedule(res.Best.Genome),
	}
	if fed {
		bg := enc.pack(res.Best.Genome)
		out.BestGenome = &bg
	}
	if run.Spec.Trace {
		for _, es := range res.History {
			out.Trace = append(out.Trace, TracePoint{Generation: es.Generation, BestObj: es.BestObj})
		}
	}
	return out, nil
}

// migrationEdges converts the island model's exchange tally to the event
// wire form.
func migrationEdges(xs []island.Exchange) []MigrationEdge {
	if len(xs) == 0 {
		return nil
	}
	out := make([]MigrationEdge, len(xs))
	for i, x := range xs {
		out[i] = MigrationEdge{From: x.From, To: x.To, Count: x.Count}
	}
	return out
}

// runCellular is Table IV: the fine-grained torus model.
func runCellular[G any](_ context.Context, run *Run, enc encoding[G]) (*Result, error) {
	nb, err := neighborhoodByName(run.Spec.Params.Neighborhood)
	if err != nil {
		return nil, err
	}
	w, h := gridDims(run, 0)
	b := run.Spec.Budget
	p := run.Spec.Params
	ccfg := cellular.Config[G]{
		Width: w, Height: h,
		Neighborhood:    nb,
		ReplaceIfBetter: true,
		CrossoverRate:   p.CrossoverRate,
		MutationRate:    p.MutationRate,
		Cross:           enc.ops.Cross,
		Mutate:          enc.ops.Mutate,
		Partitions:      p.Workers,
		Generations:     b.Generations,
		Target:          b.Target, TargetSet: b.TargetSet,
		Stop:          run.stop,
		RecordHistory: run.Spec.Trace,
	}
	if run.emit != nil {
		cells := int64(w * h)
		ccfg.OnGeneration = func(gs cellular.GenStats) {
			run.observe(gs.Generation, cells*int64(gs.Generation+1), gs.BestSoFar)
		}
	}
	res := cellular.New(enc.problem, run.RNG, ccfg).Run()
	out := &Result{
		BestObjective: res.Best.Obj,
		Evaluations:   res.Evaluations,
		Generations:   res.Generations,
		Schedule:      enc.schedule(res.Best.Genome),
	}
	cells := int64(w * h)
	for _, gs := range res.History {
		out.Trace = append(out.Trace, TracePoint{
			Generation:  gs.Generation,
			Evaluations: cells * int64(gs.Generation+1),
			BestObj:     gs.BestSoFar,
		})
	}
	return out, nil
}

// runHybrid is Lin's ring-of-torus hybrid: islands whose subpopulations
// are cellular grids.
func runHybrid[G any](_ context.Context, run *Run, enc encoding[G]) (*Result, error) {
	nb, err := neighborhoodByName(run.Spec.Params.Neighborhood)
	if err != nil {
		return nil, err
	}
	iv := interval(run, 10)
	w, h := gridDims(run, 5)
	b := run.Spec.Budget
	p := run.Spec.Params
	grids := islandCount(run, 4)
	hcfg := hybrid.RingOfTorusConfig[G]{
		Grids:    grids,
		Interval: iv,
		Epochs:   epochs(run, iv),
		Workers:  run.Spec.Params.Workers,
		Grid: cellular.Config[G]{
			Width: w, Height: h,
			Neighborhood:    nb,
			ReplaceIfBetter: true,
			CrossoverRate:   p.CrossoverRate,
			MutationRate:    p.MutationRate,
			Cross:           enc.ops.Cross,
			Mutate:          enc.ops.Mutate,
		},
		Target: b.Target, TargetSet: b.TargetSet,
		Stop: run.stop,
	}
	// Hybrid state sits at a resumable boundary between ring-migration
	// epochs, so the checkpoint seam hangs off OnEpoch, mirroring runIsland
	// (minus federation: hybrid does not shard across nodes).
	var mdl *hybrid.RingOfTorus[G]
	ckActive := run.ck.active()
	var baseElapsed int64
	if run.ck != nil && run.ck.resume != nil {
		baseElapsed = run.ck.resume.ElapsedMS
	}
	saveEvery := 1
	if ckActive {
		saveEvery = run.ck.every / iv
		if saveEvery < 1 {
			saveEvery = 1
		}
	}
	start := time.Now()
	if run.emit != nil || ckActive {
		hcfg.OnEpoch = func(epoch int, best float64) {
			if run.emit != nil {
				run.observeEpoch(epoch, (epoch+1)*iv, grids, best, nil)
			}
			if ckActive && (epoch+1)%saveEvery == 0 {
				cp := packHybridCheckpoint(run, enc, mdl.Snapshot())
				cp.ElapsedMS = baseElapsed + time.Since(start).Milliseconds()
				run.ck.save(cp)
			}
		}
	}
	mdl = hybrid.NewRingOfTorus(enc.problem, run.RNG, hcfg)
	if run.ck != nil && run.ck.resume != nil {
		snap, uerr := unpackHybridSnapshot(run, enc, run.ck.resume)
		if uerr != nil {
			return nil, uerr
		}
		if rerr := mdl.Restore(snap); rerr != nil {
			return nil, rerr
		}
	}
	res := mdl.Run()
	return &Result{
		BestObjective: res.Best.Obj,
		Evaluations:   res.Evaluations,
		Generations:   res.Epochs * iv,
		Schedule:      enc.schedule(res.Best.Genome),
	}, nil
}

// runAgents is the agent-based island GA on the virtual cube.
func runAgents[G any](_ context.Context, run *Run, enc encoding[G]) (*Result, error) {
	n := islandCount(run, 8)
	iv := interval(run, 5)
	ep := epochs(run, iv)
	b := run.Spec.Budget
	acfg := agents.Config[G]{
		Processors: n,
		SubPop:     subPop(run, n),
		Interval:   iv,
		Epochs:     ep,
		Engine:     engineConfig(run, enc),
		Target:     b.Target, TargetSet: b.TargetSet,
		Stop: run.stop,
	}
	if run.emit != nil {
		acfg.OnEpoch = func(epoch int, best float64) {
			run.observeEpoch(epoch, (epoch+1)*iv, n, best, nil)
		}
	}
	res := agents.Run(enc.problem, run.RNG, acfg)
	return &Result{
		BestObjective: res.Best.Obj,
		Evaluations:   res.Evaluations,
		Generations:   res.Epochs * iv,
		Schedule:      enc.schedule(res.Best.Genome),
	}, nil
}

// qgaModel is the star-topology parallel quantum GA on the stochastic job
// shop. It has its own Q-bit encoding, so it bypasses the encoding
// dispatch; the instance must be a (non-flexible) job shop and the
// objective is the expected makespan over the sampled scenarios.
type qgaModel struct{}

// Name implements Model.
func (qgaModel) Name() string { return "qga" }

// Solve implements Model.
func (qgaModel) Solve(_ context.Context, run *Run) (*Result, error) {
	in := run.Instance
	if in.Kind != shop.JobShop {
		return nil, fmt.Errorf("qga requires a job shop instance, got %s", in.Kind)
	}
	if o := run.Spec.Objective; o != "" && o != "makespan" {
		return nil, fmt.Errorf("qga optimises the expected makespan only, got objective %q", o)
	}
	if e := run.Spec.Encoding; e != "" {
		return nil, fmt.Errorf("qga uses its own Q-bit encoding; leave Spec.Encoding empty, got %q", e)
	}
	p := run.Spec.Params
	scenarios := p.Scenarios
	if scenarios <= 0 {
		scenarios = 6
	}
	sigma := p.Sigma
	if sigma <= 0 {
		sigma = 0.1
	}
	st := qga.NewStochastic(in, scenarios, sigma, run.RNG.Uint64())
	n := islandCount(run, 4)
	iv := interval(run, 5)
	ep := epochs(run, iv)
	b := run.Spec.Budget
	qcfg := qga.Config{
		Pop:    subPop(run, n),
		Bits:   p.Bits,
		Target: b.Target, TargetSet: b.TargetSet,
		Stop: run.stop,
	}
	if run.emit != nil {
		qcfg.OnEpoch = func(epoch int, best float64) {
			run.observeEpoch(epoch, (epoch+1)*iv, n, best, nil)
		}
	}
	res := qga.StarPQGA(st, run.RNG, n, iv, ep, qcfg)
	if res.BestSeq == nil {
		return nil, fmt.Errorf("qga cancelled before the first generation")
	}
	return &Result{
		BestObjective: res.BestObj,
		Evaluations:   res.Evaluations,
		Generations:   res.Epochs * iv,
		Encoding:      "qbits",
		// The schedule realises the best sequence on the base (expected
		// time) instance; BestObjective is its expected makespan over the
		// scenarios, so the two deliberately differ.
		Schedule: decode.JobShop(in, res.BestSeq),
	}, nil
}
