package solver

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// JobState is the lifecycle state of a submitted job.
type JobState string

const (
	// JobPending: accepted, waiting for a concurrency slot.
	JobPending JobState = "pending"
	// JobRunning: the model is executing.
	JobRunning JobState = "running"
	// JobDone: finished under its own budgets; Result is set.
	JobDone JobState = "done"
	// JobCanceled: stopped by Cancel or a cancelled submit context. When
	// the run was already in flight a partial Result (Canceled=true) is
	// still set; a job cancelled before it started has none and Err
	// carries the context error.
	JobCanceled JobState = "canceled"
	// JobFailed: the solve returned an error; Err is set.
	JobFailed JobState = "failed"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobCanceled || s == JobFailed
}

// JobStatus is a point-in-time snapshot of a job, safe to marshal.
type JobStatus struct {
	ID            string    `json:"id"`
	State         JobState  `json:"state"`
	Generation    int       `json:"generation,omitempty"`
	Evaluations   int64     `json:"evaluations,omitempty"`
	BestObjective float64   `json:"best_objective,omitempty"`
	Submitted     time.Time `json:"submitted,omitzero"`
	Started       time.Time `json:"started,omitzero"`
	Finished      time.Time `json:"finished,omitzero"`
	Error         string    `json:"error,omitempty"`
}

var (
	// ErrDraining rejects submissions after Drain or Close began.
	ErrDraining = errors.New("solver: service is draining")
	// ErrBusy rejects submissions over the service's MaxActive bound.
	ErrBusy = errors.New("solver: service at capacity")
)

// Service runs Specs as observable, cancellable jobs on a bounded worker
// pool — the serving shape of the solver. Submit returns immediately with
// a Job; the job's progress streams through Job.Events, its outcome
// through Job.Await. The zero value is ready to use.
type Service struct {
	// MaxConcurrent bounds the number of jobs running at once (default
	// GOMAXPROCS). Pending jobs queue in submission order (FIFO per slot
	// release is approximate: slots go to whichever pending job the
	// runtime wakes first).
	MaxConcurrent int
	// MaxActive, when > 0, bounds the pending+running jobs; Submit returns
	// ErrBusy beyond it. Terminal jobs never count.
	MaxActive int
	// EventBuffer is the per-subscription channel capacity (default 256).
	// A subscriber that falls behind loses oldest events first; the done
	// event is never dropped.
	EventBuffer int
	// EventHistory is the per-job replay ring (default 256): every new
	// subscription first receives the job's retained past events, so a
	// subscriber that arrives after a fast job finished still observes its
	// progress. Long runs age their oldest events out of the ring.
	EventHistory int

	// CheckpointEvery and OnCheckpoint wire the durability seam: with both
	// set, every job whose model supports checkpointing (SupportsCheckpoint)
	// snapshots its engine every CheckpointEvery generations and hands the
	// snapshot — stamped with the job's event sequence — to OnCheckpoint,
	// synchronously from the run loop. OnCheckpoint implementations persist
	// it (the daemon appends to its job store) and must not block long.
	CheckpointEvery int
	OnCheckpoint    func(jobID string, cp *Checkpoint)

	// Exchange, when set, is the federation seam threaded into every run:
	// island shard jobs (Params.FedKey set) ship elites through it at each
	// migration epoch. Jobs without shard coordinates never touch it.
	Exchange MigrantExchange

	mu       sync.Mutex
	init     bool
	sem      chan struct{}
	jobs     map[string]*Job
	order    []*Job
	seq      int64
	active   int
	draining bool
	started  time.Time

	// Monotonic service counters for the stats endpoint: evaluations
	// observed across all jobs (updated by deltas as jobs progress and
	// finish, so pruning a job never decreases it) and replay-ring
	// evictions. Atomics: jobs bump them under their own locks, not s.mu.
	totalEvals atomic.Int64
	ringDrops  atomic.Int64

	// noEvents drops the per-generation progress plumbing entirely: runs
	// solve with a nil event sink, so the engines keep their no-observer
	// fast path (no per-generation stats or locking). Pool sets it — its
	// jobs are private, nothing can subscribe to them. Jobs still record
	// their started/done lifecycle events.
	noEvents bool
}

// NewService returns a Service bounded to maxConcurrent running jobs
// (<= 0: GOMAXPROCS).
func NewService(maxConcurrent int) *Service {
	return &Service{MaxConcurrent: maxConcurrent}
}

// initLocked lazily initialises the zero value; callers hold s.mu.
func (s *Service) initLocked() {
	if s.init {
		return
	}
	workers := s.MaxConcurrent
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s.sem = make(chan struct{}, workers)
	s.jobs = make(map[string]*Job)
	s.started = time.Now()
	s.init = true
}

// Submit validates the spec and enqueues it as a new job. The returned
// job is already scheduled: it starts as soon as a concurrency slot is
// free. Cancelling ctx cancels the job (pass context.Background() to
// detach the job's lifetime from the submission context).
func (s *Service) Submit(ctx context.Context, spec Spec) (*Job, error) {
	return s.SubmitOpts(ctx, spec, SubmitOptions{})
}

// SubmitOptions are the recovery-oriented extras of SubmitOpts; the zero
// value makes SubmitOpts identical to Submit.
type SubmitOptions struct {
	// ID requests a specific job ID instead of a generated one, so a
	// daemon re-submitting persisted jobs after a restart keeps their
	// published identities. An ID already in use is an error.
	ID string
	// Resume warm-starts the job from a checkpoint (the model must support
	// checkpointing; see SupportsCheckpoint). The job's event numbering
	// continues from the checkpoint's EventSeq.
	Resume *Checkpoint
	// Submitted backdates the job's submission time to the original one
	// (zero: now).
	Submitted time.Time
}

// SubmitOpts is Submit with recovery options.
func (s *Service) SubmitOpts(ctx context.Context, spec Spec, opts SubmitOptions) (*Job, error) {
	return s.submit(ctx, spec, opts, nil)
}

// SubmitRunner enqueues a job whose body is the supplied runner instead of
// a model solve. The runner executes under the job's context with the
// job's event sink (nil when the service suppresses events), and its
// outcome finishes the job exactly like a solve would — status, events,
// cancellation and Await all behave identically. Runner jobs do not
// occupy a worker slot: they are expected to orchestrate other jobs, not
// compute, and holding a slot while waiting on a job that needs one would
// deadlock a single-slot service. The federation layer uses it for the
// owner job that fans a federated spec out across the fleet and reduces
// the shard results.
func (s *Service) SubmitRunner(ctx context.Context, spec Spec, runner func(ctx context.Context, emit func(Event)) (*Result, error)) (*Job, error) {
	if runner == nil {
		return nil, fmt.Errorf("solver: SubmitRunner requires a runner")
	}
	return s.submit(ctx, spec, SubmitOptions{}, runner)
}

// submit is the shared body of SubmitOpts and SubmitRunner.
func (s *Service) submit(ctx context.Context, spec Spec, opts SubmitOptions, runner func(ctx context.Context, emit func(Event)) (*Result, error)) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.Resume != nil && !SupportsCheckpoint(spec.Model) {
		return nil, fmt.Errorf("solver: model %q cannot resume from a checkpoint", spec.Model)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	s.initLocked()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if s.MaxActive > 0 && s.active >= s.MaxActive {
		s.mu.Unlock()
		return nil, ErrBusy
	}
	id := opts.ID
	if id == "" {
		// Generated IDs skip over explicit ones a recovery already took.
		for {
			s.seq++
			id = fmt.Sprintf("j%06d", s.seq)
			if _, taken := s.jobs[id]; !taken {
				break
			}
		}
	} else if _, taken := s.jobs[id]; taken {
		s.mu.Unlock()
		return nil, fmt.Errorf("solver: job ID %q already in use", id)
	}
	submitted := opts.Submitted
	if submitted.IsZero() {
		submitted = time.Now()
	}
	jctx, cancel := context.WithCancel(ctx)
	j := &Job{
		id:        id,
		spec:      spec,
		svc:       s,
		ctx:       jctx,
		cancel:    cancel,
		state:     JobPending,
		submitted: submitted,
		done:      make(chan struct{}),
		resume:    opts.Resume,
		runner:    runner,
	}
	if opts.Resume != nil {
		j.seq = opts.Resume.EventSeq
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.active++
	s.mu.Unlock()
	go s.runJob(j)
	return j, nil
}

// RestoreTerminal registers an already-finished job from persisted state,
// so a restarted daemon keeps serving results and event streams of jobs
// that completed before the restart. The job is terminal on arrival: it
// holds no concurrency slot, its done channel is closed, and its replay
// ring carries a synthesized done event. The state must be terminal and
// the ID unused.
func (s *Service) RestoreTerminal(id string, spec Spec, state JobState, res *Result, errMsg string, submitted, started, finished time.Time) (*Job, error) {
	if !state.Terminal() {
		return nil, fmt.Errorf("solver: RestoreTerminal with non-terminal state %q", state)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.initLocked()
	if _, taken := s.jobs[id]; taken {
		return nil, fmt.Errorf("solver: job ID %q already in use", id)
	}
	jctx, cancel := context.WithCancel(context.Background())
	cancel()
	j := &Job{
		id:        id,
		spec:      spec,
		svc:       s,
		ctx:       jctx,
		cancel:    cancel,
		state:     state,
		submitted: submitted,
		started:   started,
		finished:  finished,
		result:    res,
		done:      make(chan struct{}),
	}
	if errMsg != "" {
		j.err = errors.New(errMsg)
	}
	if res != nil {
		j.gen = res.Generations
		j.evals = res.Evaluations
		j.best, j.hasBest = res.BestObjective, true
	}
	j.mu.Lock()
	ev := Event{Type: EventDone, Generation: j.gen, Evaluations: j.evals, Result: res, Error: errMsg}
	if j.hasBest {
		ev.BestObjective = j.best
	}
	j.recordLocked(ev)
	j.mu.Unlock()
	close(j.done)
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	return j, nil
}

// runJob waits for a slot, runs the solve with the job as its event sink,
// and finishes the job.
func (s *Service) runJob(j *Job) {
	// Runner jobs orchestrate other jobs instead of computing; they skip
	// the worker-slot semaphore (see SubmitRunner).
	if j.runner == nil {
		select {
		case <-j.ctx.Done():
			j.finish(nil, j.ctx.Err())
			return
		case s.sem <- struct{}{}:
		}
		defer func() { <-s.sem }()
	}
	// A cancellation that raced the slot acquisition still fails fast, so
	// a cancelled batch never starts queued work.
	if err := j.ctx.Err(); err != nil {
		j.finish(nil, err)
		return
	}
	j.setRunning()
	sink := j.emit
	if s.noEvents {
		sink = nil
	}
	if j.runner != nil {
		res, err := j.runner(j.ctx, sink)
		j.finish(res, err)
		return
	}
	var ck *ckptSeam
	if j.resume != nil || (s.OnCheckpoint != nil && s.CheckpointEvery > 0 && SupportsCheckpoint(j.spec.Model)) {
		ck = &ckptSeam{resume: j.resume}
		if s.OnCheckpoint != nil && s.CheckpointEvery > 0 {
			onCk := s.OnCheckpoint
			ck.every = s.CheckpointEvery
			ck.save = func(cp *Checkpoint) {
				cp.EventSeq = j.curSeq()
				onCk(j.id, cp)
			}
		}
	}
	res, err := solve(j.ctx, j.spec, sink, ck, s.Exchange)
	j.finish(res, err)
}

// ServiceStats is a point-in-time snapshot of the service's operational
// counters — the feed of the daemon's /v1/stats endpoint. Evaluations and
// RingDrops are monotonic over the service's lifetime (pruning finished
// jobs never decreases them); the job counts are instantaneous.
type ServiceStats struct {
	Jobs        map[JobState]int `json:"jobs"`
	QueueDepth  int              `json:"queue_depth"` // pending jobs awaiting a slot
	Evaluations int64            `json:"evaluations_total"`
	EvalsPerSec float64          `json:"evals_per_sec"` // lifetime average
	RingDrops   int64            `json:"replay_ring_drops_total"`
	UptimeSec   float64          `json:"uptime_sec"`
}

// Stats snapshots the service's counters.
func (s *Service) Stats() ServiceStats {
	s.mu.Lock()
	s.initLocked()
	jobs := make([]*Job, len(s.order))
	copy(jobs, s.order)
	started := s.started
	s.mu.Unlock()

	st := ServiceStats{Jobs: map[JobState]int{
		JobPending: 0, JobRunning: 0, JobDone: 0, JobCanceled: 0, JobFailed: 0,
	}}
	for _, j := range jobs {
		st.Jobs[j.Status().State]++
	}
	st.QueueDepth = st.Jobs[JobPending]
	st.Evaluations = s.totalEvals.Load()
	st.RingDrops = s.ringDrops.Load()
	st.UptimeSec = time.Since(started).Seconds()
	if st.UptimeSec > 0 {
		st.EvalsPerSec = float64(st.Evaluations) / st.UptimeSec
	}
	return st
}

// Get returns a submitted job by ID.
func (s *Service) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns all retained jobs in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	copy(out, s.order)
	return out
}

// Remove forgets a terminal job (daemons prune finished history with it).
// Removing a live job is refused.
func (s *Service) Remove(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || !j.Status().State.Terminal() {
		return false
	}
	delete(s.jobs, id)
	for i, o := range s.order {
		if o == j {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return true
}

// Drain stops accepting submissions and waits for every job to finish.
// When ctx expires first, the remaining jobs are cancelled and Drain
// waits for their prompt generation-boundary exit before returning the
// context's error. A nil-error return means every job completed under its
// own budget.
func (s *Service) Drain(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	s.initLocked()
	s.draining = true
	jobs := make([]*Job, len(s.order))
	copy(jobs, s.order)
	s.mu.Unlock()

	var forced error
	for _, j := range jobs {
		select {
		case <-j.done:
			continue
		case <-ctx.Done():
			forced = ctx.Err()
		}
		if forced != nil {
			break
		}
	}
	if forced != nil {
		for _, j := range jobs {
			j.Cancel()
		}
		for _, j := range jobs {
			<-j.done
		}
	}
	return forced
}

// Close cancels every job and waits for them to stop. The service rejects
// submissions afterwards.
func (s *Service) Close() {
	s.mu.Lock()
	s.initLocked()
	s.draining = true
	jobs := make([]*Job, len(s.order))
	copy(jobs, s.order)
	s.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
	for _, j := range jobs {
		<-j.done
	}
}

// Job is one submitted solver run: identified, observable, cancellable.
type Job struct {
	id     string
	spec   Spec
	svc    *Service
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	// resume, when set, warm-starts the run (see SubmitOptions.Resume).
	resume *Checkpoint
	// runner, when set, replaces the model solve as the job's body (see
	// SubmitRunner).
	runner func(ctx context.Context, emit func(Event)) (*Result, error)

	mu        sync.Mutex
	state     JobState
	seq       int64
	gen       int
	evals     int64
	best      float64
	hasBest   bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    *Result
	err       error
	subs      []chan Event
	hist      []Event
}

// ID returns the service-assigned job identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the spec as submitted.
func (j *Job) Spec() Spec { return j.spec }

// Status returns a point-in-time snapshot.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Generation:  j.gen,
		Evaluations: j.evals,
		Submitted:   j.submitted,
		Started:     j.started,
		Finished:    j.finished,
	}
	if j.hasBest {
		st.BestObjective = j.best
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Result returns the terminal result and error (nil, nil while the job is
// still live). Await is the blocking form.
func (j *Job) Result() (*Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Await blocks until the job reaches a terminal state (or ctx expires)
// and returns its outcome. Like Solve, a cancelled in-flight run returns
// its partial best with Result.Canceled set and a nil error. A finished
// job always returns its result, even under an already-expired ctx — the
// common await-after-cancel pattern must not lose the partial result to
// a select race.
func (j *Job) Await(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.done:
		return j.Result()
	default:
	}
	select {
	case <-j.done:
		return j.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// curSeq returns the job's current event sequence number (checkpoints are
// stamped with it so a resumed job continues its numbering).
func (j *Job) curSeq() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Cancel requests cancellation. A pending job fails with context.Canceled;
// a running job stops at its next generation boundary and keeps its
// partial result. Cancel is idempotent and safe after completion.
func (j *Job) Cancel() { j.cancel() }

// Events subscribes to the job's typed progress stream. Every call
// returns an independent channel that first replays the job's retained
// event history (see Service.EventHistory) — so subscribing after a fast
// job finished still observes its progress — then receives live events,
// and is closed after the terminal done event. A subscriber that falls
// behind loses oldest live events first (the channel is buffered; see
// Service.EventBuffer), never the done event.
func (j *Job) Events() <-chan Event {
	buf := j.svc.EventBuffer
	if buf <= 0 {
		buf = 256
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan Event, len(j.hist)+buf)
	for _, ev := range j.hist {
		ch <- ev
	}
	if j.state.Terminal() {
		close(ch)
		return ch
	}
	j.subs = append(j.subs, ch)
	return ch
}

// recordLocked stamps the event (job ID, next sequence number), appends
// it to the bounded replay ring and fans it out to every subscriber;
// callers hold j.mu.
func (j *Job) recordLocked(ev Event) {
	j.seq++
	ev.Job = j.id
	ev.Seq = j.seq
	max := j.svc.EventHistory
	if max <= 0 {
		max = 256
	}
	j.hist = append(j.hist, ev)
	if len(j.hist) > max {
		j.hist = j.hist[1:]
		j.svc.ringDrops.Add(1)
	}
	for _, ch := range j.subs {
		sendDropOldest(ch, ev)
	}
}

// setRunning transitions pending -> running and emits the started event.
func (j *Job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = JobRunning
	j.started = time.Now()
	j.recordLocked(Event{Type: EventStarted, Model: j.spec.Model, Instance: j.spec.Problem.Instance})
}

// emit is the run's progress sink: it updates the status snapshot and
// records the event. Models call the progress seam from one goroutine at
// a time, and every other emitter holds j.mu, so the drop-oldest sends
// have a single producer per channel.
func (j *Job) emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if ev.Generation > j.gen {
		j.gen = ev.Generation
	}
	if ev.Evaluations > j.evals {
		j.svc.totalEvals.Add(ev.Evaluations - j.evals)
		j.evals = ev.Evaluations
	}
	if ev.Type == EventImproved {
		j.best = ev.BestObjective
		j.hasBest = true
	}
	j.recordLocked(ev)
}

// finish records the outcome, emits the done event and closes every
// subscription.
func (j *Job) finish(res *Result, err error) {
	j.mu.Lock()
	switch {
	case err != nil:
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			j.state = JobCanceled
		} else {
			j.state = JobFailed
		}
	case res != nil && res.Canceled:
		j.state = JobCanceled
	default:
		j.state = JobDone
	}
	j.result, j.err = res, err
	j.finished = time.Now()
	if res != nil {
		j.gen = res.Generations
		if res.Evaluations > j.evals {
			j.svc.totalEvals.Add(res.Evaluations - j.evals)
		}
		j.evals = res.Evaluations
		j.best, j.hasBest = res.BestObjective, true
	}
	ev := Event{Type: EventDone, Generation: j.gen, Evaluations: j.evals, Result: res}
	if j.hasBest {
		ev.BestObjective = j.best
	}
	if err != nil {
		ev.Error = err.Error()
	}
	j.recordLocked(ev)
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	j.cancel() // release the job context's resources
	j.mu.Unlock()

	j.svc.mu.Lock()
	j.svc.active--
	j.svc.mu.Unlock()
	close(j.done)
}

// sendDropOldest delivers ev without ever blocking the solver: when the
// subscriber's buffer is full the oldest buffered event is discarded to
// make room. With a single producer per channel the second send can only
// fail if the consumer raced a receive in between, in which case space
// exists on the retry.
func sendDropOldest(ch chan Event, ev Event) {
	for {
		select {
		case ch <- ev:
			return
		default:
		}
		select {
		case <-ch:
		default:
		}
	}
}
