package solver

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Model is one parallelisation strategy behind a registry name. Solve is
// handed the resolved Run and returns a Result with at least
// BestObjective, Evaluations, Generations and Schedule set; the common
// fields (model, instance, encoding, seed, elapsed, canceled) are filled
// in by the solver layer.
type Model interface {
	Name() string
	Solve(ctx context.Context, run *Run) (*Result, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Model{}
)

// Register adds a model to the registry. Registering a duplicate name
// panics: names are the public API of Specs.
func Register(m Model) {
	registryMu.Lock()
	defer registryMu.Unlock()
	name := m.Name()
	if name == "" {
		panic("solver: model with empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("solver: duplicate model %q", name))
	}
	registry[name] = m
}

// Lookup resolves a registry name.
func Lookup(name string) (Model, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	m, ok := registry[name]
	return m, ok
}

// Names returns the registered model names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
