// Package solver is the unified entry point over every parallel GA model
// of the survey reproduction. The survey's central observation is that
// master-slave, fine-grained, island and hybrid PGAs are interchangeable
// parallelisation strategies over the same GA skeleton; this package makes
// that interchangeability operational:
//
//   - a JSON-serialisable Spec names a problem (embedded benchmark,
//     instance file, or generator parameters), an encoding, an objective,
//     a model from the registry, model parameters, budgets and a seed;
//   - Solve builds the instance, the bridge problem and the model, runs it
//     under a context (cancellation and deadlines are threaded down to the
//     engines' generation loops), and returns a unified Result with the
//     best schedule, objective, evaluation count, wall time and an
//     optional convergence trace;
//   - Pool solves many Specs concurrently on a bounded worker pool with
//     deterministic per-run seed derivation — the batch-serving shape.
//
// Models self-register in this package's init (serial, ms, island,
// cellular, hybrid, agents, qga); external packages may Register more.
package solver

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/decode"
	"repro/internal/rng"
	"repro/internal/shop"
)

// ProblemSpec names or generates a shop scheduling instance.
type ProblemSpec struct {
	// Instance is an embedded benchmark name ("ft06") or a JSON file path.
	// When set it overrides the generator fields below.
	Instance string `json:"instance,omitempty"`
	// Kind selects the generated machine environment: "flow", "job",
	// "open", "fjs" (flexible job shop) or "ffs" (flexible flow shop).
	Kind     string `json:"kind,omitempty"`
	Jobs     int    `json:"jobs,omitempty"`     // generated jobs (default 10)
	Machines int    `json:"machines,omitempty"` // generated machines (default 5)
	// Seed is the instance generation seed. Any int64 is accepted;
	// ClampInstanceSeed folds it into the Taillard stream's valid range
	// (0 selects the default seed 1).
	Seed int64 `json:"seed,omitempty"`
}

// Params bundles the model parameters a Spec may set; zero values select
// model-specific defaults. One flat struct keeps Specs trivially
// JSON-round-trippable; each model reads the fields it understands.
type Params struct {
	Pop int `json:"pop,omitempty"` // total population across islands (default 80)
	// Workers is the parallel-execution width, threaded into every model
	// that has one: ms sharded-pipeline workers (default 4), island/hybrid
	// island-stepping pool (default GOMAXPROCS), cellular partitions
	// (default 1). serial, agents and qga run their fixed concurrency
	// structure and ignore it. Every model is deterministic in it: the
	// same Spec.Seed yields the same Result for workers 1, 2 or 8
	// (TestWorkerCountInvariance).
	Workers  int `json:"workers,omitempty"`
	Islands  int `json:"islands,omitempty"`  // islands, grids, processor agents (default 4; agents 8)
	Interval int `json:"interval,omitempty"` // generations between migrations (default 5; hybrid 10)
	Migrants int `json:"migrants,omitempty"` // emigrants per edge per epoch (default 1)

	// Topology names the island connection graph: "ring" (default),
	// "bi-ring", "torus", "full", "star" or "hypercube".
	Topology string `json:"topology,omitempty"`

	Width        int    `json:"width,omitempty"`        // cellular grid width
	Height       int    `json:"height,omitempty"`       // cellular grid height
	Neighborhood string `json:"neighborhood,omitempty"` // "l5" (default), "c9", "l9"

	Elite         int     `json:"elite,omitempty"`          // elites per generation (default 1)
	CrossoverRate float64 `json:"crossover_rate,omitempty"` // default 0.9
	MutationRate  float64 `json:"mutation_rate,omitempty"`  // default 0.2

	// Rule selects the open shop decoding rule: "earliest" (default),
	// "lpt-task" or "lpt-machine".
	Rule string `json:"rule,omitempty"`

	Scenarios int     `json:"scenarios,omitempty"` // qga sampled scenarios (default 6)
	Sigma     float64 `json:"sigma,omitempty"`     // qga processing-time deviation (default 0.1)
	Bits      int     `json:"bits,omitempty"`      // qga bits per priority (default 4)

	// Federate requests fan-out across the serving node's federation
	// fleet: the islands (and population) are split over the peers and
	// elites are exchanged over the wire each migration epoch. Island
	// model only. A node with no federation configured runs the job
	// locally — the degenerate fleet of one.
	Federate bool `json:"federate,omitempty"`

	// FedKey, FedNodes and FedRank are the shard coordinates the
	// federation layer stamps on the per-node shard jobs it distributes;
	// user submissions leave them zero. FedKey identifies the federated
	// job fleet-wide, FedNodes is the active fleet size and FedRank this
	// shard's rank in [0, FedNodes). A shard derives its RNG from the job
	// seed split FedNodes ways at rank FedRank, so the fleet's streams
	// are disjoint and the run is replayable for a fixed fleet shape.
	FedKey   string `json:"fed_key,omitempty"`
	FedNodes int    `json:"fed_nodes,omitempty"`
	FedRank  int    `json:"fed_rank,omitempty"`

	// FedEpochTimeoutMS overrides the federation node's epoch barrier
	// timeout for this job (milliseconds; 0 keeps the daemon default set
	// by -fed-epoch-timeout-ms). It rides the shard specs to every node,
	// so the whole fleet shares one barrier budget per job.
	FedEpochTimeoutMS int64 `json:"fed_epoch_timeout_ms,omitempty"`
}

// DefaultGenerations is the generation budget an all-zero Budget gets;
// callers layering their own budget policy (the HTTP server's wall cap)
// reference it instead of restating the number.
const DefaultGenerations = 150

// Budget bundles the termination criteria; any satisfied criterion stops
// the run. All-zero budgets default to DefaultGenerations.
//
// Generations, Target and WallMillis apply to every model. Evaluations is
// enforced exactly by the engine-driven models (serial, ms) and as a
// derived generation bound by the epoch-structured models, which may
// overshoot by up to one migration epoch. Stagnation applies to serial
// and ms only.
type Budget struct {
	Generations int     `json:"generations,omitempty"`
	Evaluations int64   `json:"evaluations,omitempty"`
	Stagnation  int     `json:"stagnation,omitempty"`
	Target      float64 `json:"target,omitempty"`
	TargetSet   bool    `json:"target_set,omitempty"`
	WallMillis  int64   `json:"wall_ms,omitempty"`
}

// Spec declares one solver run. The zero value is not valid: Problem and
// Model must be set. Specs marshal to and from JSON without loss.
type Spec struct {
	Problem ProblemSpec `json:"problem"`
	// Encoding selects the chromosome representation: "" (auto by kind),
	// "perm" (job permutation, flow shop), "seq" (operation sequence),
	// "keys" (random keys decoded by Giffler-Thompson) or "flex"
	// (assignment + sequence, flexible shops).
	Encoding string `json:"encoding,omitempty"`
	// Objective names the minimised objective: "" or "makespan" (default),
	// "twc", "twt", "twu", "max-tardiness", "energy".
	Objective string `json:"objective,omitempty"`
	// Model is a registry name; see Names().
	Model  string `json:"model"`
	Params Params `json:"params,omitempty"`
	Budget Budget `json:"budget,omitempty"`
	// Seed is the GA master seed (default 1). Pool derives per-run seeds
	// for Specs left at 0.
	Seed uint64 `json:"seed,omitempty"`
	// StallGenerations stops the run after this many consecutive
	// generations without a new incumbent — convergence-based termination
	// next to the hard budgets. It is sugar for Budget.Stagnation (which
	// wins when both are set) and shares its scope: honored exactly by
	// the engine-driven models (serial, ms), ignored by the
	// epoch-structured ones.
	StallGenerations int `json:"stall_generations,omitempty"`
	// Trace records the convergence trace in the Result (off by default:
	// it costs per-generation statistics).
	Trace bool `json:"trace,omitempty"`
}

// TracePoint is one sample of the convergence trace. Granularity depends
// on the model: per generation for the panmictic and cellular models, per
// migration epoch for the island model.
type TracePoint struct {
	Generation  int     `json:"gen"`
	Evaluations int64   `json:"evals,omitempty"`
	BestObj     float64 `json:"best"`
}

// Result is the unified outcome of a Solve.
type Result struct {
	Model         string        `json:"model"`
	Instance      string        `json:"instance"`
	Kind          string        `json:"kind"`
	Encoding      string        `json:"encoding"`
	Seed          uint64        `json:"seed"`
	BestObjective float64       `json:"best_objective"`
	Evaluations   int64         `json:"evaluations"`
	Generations   int           `json:"generations"`
	Elapsed       time.Duration `json:"elapsed_ns"`
	Canceled      bool          `json:"canceled,omitempty"`

	// Reference, RefKind and Gap embed the instance's reference objective
	// (see ReferenceKindFor) so consumers — the CLI, the bench suite, the
	// HTTP server — read the gap off the Result instead of re-resolving
	// references themselves. Gap is (BestObjective-Reference)/Reference;
	// negative gaps against a "heuristic" reference are expected of any
	// real GA.
	Reference float64 `json:"reference,omitempty"`
	RefKind   RefKind `json:"ref_kind,omitempty"`
	// Gap stays present at 0 (a gap of exactly zero means the reference
	// was matched, which consumers must be able to read).
	Gap   float64      `json:"gap"`
	Trace []TracePoint `json:"trace,omitempty"`

	// BestGenome is the packed wire form of the winning chromosome, set
	// only by federated shard runs (Params.FedKey): Schedule does not
	// cross HTTP, so the owner node rebuilds the fleet winner's schedule
	// from this via ReconstructSchedule.
	BestGenome *Genome `json:"best_genome,omitempty"`

	// Nodes is the per-node provenance of a federated Result: one entry
	// per fleet node, set by the owner's best-of-fleet reduction.
	Nodes []NodeResult `json:"nodes,omitempty"`

	// Schedule is the decoded best schedule. It is reconstructed from the
	// winning genome and validated against Table I before Solve returns.
	Schedule *shop.Schedule `json:"-"`
}

// RoundedElapsed returns Elapsed rounded to ~2 significant figures for
// display.
func (r *Result) RoundedElapsed() time.Duration {
	return r.Elapsed.Round(r.Elapsed/100 + 1)
}

// Run is the resolved form of a Spec handed to a Model: the built
// instance, the objective, the resolved encoding name, the seeded RNG and
// the cancellation hook.
type Run struct {
	Spec      Spec // normalised: defaults applied
	Instance  *shop.Instance
	Objective shop.Objective
	Encoding  string
	RNG       *rng.RNG

	stop func() bool

	// emit, when non-nil, receives the run's typed progress events (see
	// events.go); lastBest/hasBest track the incumbent for classifying
	// observations as improvements.
	emit     func(Event)
	lastBest float64
	hasBest  bool

	// ck, when non-nil, is the checkpoint seam of the engine-driven models
	// (see checkpoint.go): periodic resumable snapshots out, an optional
	// warm start in.
	ck *ckptSeam

	// exchange, when non-nil, is the federation seam (see federate.go):
	// the island runner ships elites through it at every migration epoch
	// when the spec carries shard coordinates.
	exchange MigrantExchange
}

// Stopped reports whether the run's context has been cancelled; models
// poll it between generations (it is also threaded into the engines as
// Termination.Stop).
func (r *Run) Stopped() bool { return r.stop != nil && r.stop() }

// BuildInstance materialises a ProblemSpec: registry benchmarks and files
// by name, generated instances by kind. Registry names (shop.BenchmarkNames)
// win over file paths.
func BuildInstance(p ProblemSpec) (*shop.Instance, error) {
	if p.Instance != "" {
		if in, ok := shop.BuildBenchmark(p.Instance); ok {
			return in, nil
		}
		return shop.LoadFile(p.Instance)
	}
	jobs, machines := p.Jobs, p.Machines
	if jobs <= 0 {
		jobs = 10
	}
	if machines <= 0 {
		machines = 5
	}
	// ClampInstanceSeed documents and enforces the Taillard seed range.
	seed := ClampInstanceSeed(p.Seed)
	switch p.Kind {
	case "flow":
		return shop.GenerateFlowShop("gen-flow", jobs, machines, seed), nil
	case "job", "":
		return shop.GenerateJobShop("gen-job", jobs, machines, seed, ClampInstanceSeed(int64(seed)+1)), nil
	case "open":
		return shop.GenerateOpenShop("gen-open", jobs, machines, seed), nil
	case "fjs":
		return shop.GenerateFlexibleJobShop("gen-fjs", jobs, machines, machines, 3, seed), nil
	case "ffs":
		per := machines / 2
		if per < 1 {
			per = 1
		}
		return shop.GenerateFlexibleFlowShop("gen-ffs", jobs, []int{per, machines - per}, true, seed), nil
	default:
		return nil, fmt.Errorf("solver: unknown problem kind %q", p.Kind)
	}
}

// objectiveByName resolves an objective name to the shop objective.
func objectiveByName(name string) (shop.Objective, error) {
	switch name {
	case "", "makespan":
		return shop.Makespan, nil
	case "twc":
		return shop.TotalWeightedCompletion, nil
	case "twt":
		return shop.TotalWeightedTardiness, nil
	case "twu":
		return shop.TotalWeightedUnitPenalty, nil
	case "max-tardiness":
		return shop.MaxTardiness, nil
	case "energy":
		return shop.Energy, nil
	default:
		return nil, fmt.Errorf("solver: unknown objective %q", name)
	}
}

// normalized applies the spec-level defaults shared by all models.
func (s Spec) normalized() Spec {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Params.Pop <= 0 {
		s.Params.Pop = 80
	}
	b := &s.Budget
	// StallGenerations is sugar for Budget.Stagnation; an explicit
	// Stagnation wins.
	if s.StallGenerations > 0 && b.Stagnation <= 0 {
		b.Stagnation = s.StallGenerations
	}
	if b.Generations <= 0 && b.Evaluations <= 0 && b.Stagnation <= 0 &&
		!b.TargetSet && b.WallMillis <= 0 {
		b.Generations = DefaultGenerations
	}
	if b.Generations <= 0 {
		if b.Evaluations > 0 {
			// Epoch-structured models drive their run length from the
			// generation budget; derive one so an evaluations-only budget
			// bounds them too (~Pop evaluations per generation).
			b.Generations = int(b.Evaluations/int64(s.Params.Pop)) + 1
		} else {
			// A wall/target-only budget still needs a generation scale.
			b.Generations = 1 << 20
		}
	}
	return s
}

// termination maps the budget and the cancellation hook onto the engine's
// stopping criteria.
func (r *Run) termination() core.Termination {
	b := r.Spec.Budget
	return core.Termination{
		MaxGenerations: b.Generations,
		MaxEvaluations: b.Evaluations,
		MaxStagnation:  b.Stagnation,
		Target:         b.Target,
		TargetSet:      b.TargetSet,
		WallClock:      time.Duration(b.WallMillis) * time.Millisecond,
		Stop:           r.stop,
	}
}

// Solve runs one Spec to completion (or cancellation) and returns the
// unified Result. The context's cancellation and deadline are polled by
// the model between generations, so Solve returns promptly with the best
// found so far and Result.Canceled set. Errors are reserved for invalid
// specs and infeasible decoded schedules.
//
// Solve is the blocking form; Service.Submit is the job-oriented one with
// streaming progress, and Pool the batch layer over it.
func Solve(ctx context.Context, spec Spec) (*Result, error) {
	return solve(ctx, spec, nil, nil, nil)
}

// solve is Solve with the progress, durability and federation seams:
// emit, when non-nil, receives the run's typed events (the Service wires
// a Job's fan-out here); ck, when non-nil, threads checkpointing into the
// engine-driven models (the Service and SolveWithCheckpoints wire it);
// ex, when non-nil, is the migrant exchange shard runs ship elites
// through (the Service wires its Exchange here).
func solve(ctx context.Context, spec Spec, emit func(Event), ck *ckptSeam, ex MigrantExchange) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if ck != nil {
		if ck.resume != nil && !SupportsCheckpoint(spec.Model) {
			return nil, fmt.Errorf("solver: model %q cannot resume from a checkpoint", spec.Model)
		}
		if !ck.active() && ck.resume == nil {
			ck = nil
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	spec = spec.normalized()
	in, err := BuildInstance(spec.Problem)
	if err != nil {
		return nil, err
	}
	obj, err := objectiveByName(spec.Objective)
	if err != nil {
		return nil, err
	}
	enc, err := resolveEncoding(spec.Encoding, in)
	if err != nil {
		return nil, err
	}
	model, ok := Lookup(spec.Model)
	if !ok {
		return nil, fmt.Errorf("solver: unknown model %q (registered: %v)", spec.Model, Names())
	}
	// Enforce the wall budget as a context deadline so it reaches every
	// model through the Stop hook (the epoch-structured models never see
	// the engine-level WallClock criterion).
	userCtx := ctx
	if w := spec.Budget.WallMillis; w > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(w)*time.Millisecond)
		defer cancel()
	}
	// A federated shard draws its RNG from the job seed split FedNodes
	// ways at its rank — the PR 5 substream discipline lifted to the
	// fleet: every node's streams are disjoint, and a federated run is
	// replayable for a fixed fleet shape and seed.
	r := rng.New(spec.Seed)
	if n := spec.Params.FedNodes; n > 1 {
		r = r.SplitN(n)[spec.Params.FedRank]
	}
	run := &Run{
		Spec:      spec,
		Instance:  in,
		Objective: obj,
		Encoding:  enc,
		RNG:       r,
		emit:      emit,
		ck:        ck,
		exchange:  ex,
		stop: func() bool {
			select {
			case <-ctx.Done():
				return true
			default:
				return false
			}
		},
	}
	start := time.Now()
	res, err := model.Solve(ctx, run)
	if err != nil {
		return nil, fmt.Errorf("solver: model %s: %w", spec.Model, err)
	}
	res.Model = spec.Model
	res.Instance = in.Name
	res.Kind = in.Kind.String()
	if res.Encoding == "" {
		// Models with a private representation (qga's Q-bits) set their
		// own; everything else reports the resolved encoding it ran.
		res.Encoding = enc
	}
	res.Seed = spec.Seed
	res.Elapsed = time.Since(start)
	// A run stopped by its own wall budget completed normally; Canceled
	// reports only caller-initiated cancellation.
	res.Canceled = userCtx.Err() != nil
	if res.Schedule == nil {
		return nil, fmt.Errorf("solver: model %s returned no schedule", spec.Model)
	}
	if err := res.Schedule.Validate(); err != nil {
		return nil, fmt.Errorf("solver: model %s produced infeasible schedule: %w", spec.Model, err)
	}
	// Embed the reference so consumers read gaps off the Result instead of
	// re-resolving references themselves.
	if ref, kind, err := ReferenceKindFor(in, spec.Objective); err == nil && ref > 0 {
		res.Reference = ref
		res.RefKind = kind
		res.Gap = (res.BestObjective - ref) / ref
	}
	return res, nil
}

// RefKind says what a reference objective is measured against, which
// decides how a gap to it should be read.
type RefKind string

const (
	// RefOptimal: the registry's proven optimal makespan.
	RefOptimal RefKind = "optimal"
	// RefBestKnown: the registry's best-known (not proven) makespan.
	RefBestKnown RefKind = "best-known"
	// RefHeuristic: the survey's Fbar — the best of a few dispatching-rule
	// schedules. Negative gaps (beating it) are expected of any real GA.
	RefHeuristic RefKind = "heuristic"
)

// Reference returns the reference objective for the spec's instance, for
// gap reporting next to a Result: the instance registry's best-known
// makespan when one applies, the heuristic Fbar otherwise.
func Reference(spec Spec) (float64, error) {
	in, err := BuildInstance(spec.Problem)
	if err != nil {
		return 0, err
	}
	return ReferenceFor(in, spec.Objective)
}

// ReferenceFor is Reference for an already-built instance, so callers
// that hold one (to print instance details, say) need not rebuild it.
func ReferenceFor(in *shop.Instance, objective string) (float64, error) {
	ref, _, err := ReferenceKindFor(in, objective)
	return ref, err
}

// ReferenceKindFor resolves the reference objective and its kind. The
// instance registry is consulted by the built instance's name: a registered
// benchmark with a recorded best-known makespan anchors the makespan
// objective exactly; every other (instance, objective) pair falls back to
// the heuristic reference.
func ReferenceKindFor(in *shop.Instance, objective string) (float64, RefKind, error) {
	obj, err := objectiveByName(objective)
	if err != nil {
		return 0, RefHeuristic, err
	}
	if objective == "" || objective == "makespan" {
		// Guard against a file-loaded instance whose name merely collides
		// with a registry entry: the anchor only applies when the shape
		// AND total work match the registered benchmark, so a same-named,
		// same-sized variant with tweaked times is not anchored to an
		// optimum that belongs to different data.
		if b, ok := shop.LookupBenchmark(in.Name); ok && b.BestKnown > 0 &&
			in.Kind == b.Kind && in.NumJobs() == b.Jobs &&
			in.NumMachines == b.Machines && totalWork(in) == totalWork(b.New()) {
			kind := RefBestKnown
			if b.Optimal {
				kind = RefOptimal
			}
			return float64(b.BestKnown), kind, nil
		}
	}
	return decode.Reference(in, obj), RefHeuristic, nil
}

// totalWork sums every eligible processing time and operation count into a
// cheap checksum for the registry-anchor guard above.
func totalWork(in *shop.Instance) int64 {
	var sum int64
	for _, j := range in.Jobs {
		for _, op := range j.Ops {
			sum += int64(len(op.Times)) << 32
			for _, t := range op.Times {
				sum += int64(t)
			}
		}
	}
	return sum
}
