// Open shop scheduling with LPT decoding heuristics and broadcast islands
// — the Kokosiński & Studzienny [32] / Harmanani et al. [33] line of work:
//
//   - chromosomes are permutations with repetitions decoded by the
//     LPT-Task and LPT-Machine greedy heuristics;
//   - the island GA broadcasts every island's best to all others
//     (Kokosiński's migration), and a two-level GN<<LN variant
//     (Harmanani) shares with neighbours often and broadcasts rarely.
//
// Run with: go run ./examples/openshop
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/decode"
	"repro/internal/island"
	"repro/internal/rng"
	"repro/internal/shop"
	"repro/internal/shopga"
)

func main() {
	in := shop.GenerateOpenShop("open-8x8", 8, 8, 19283746)
	fmt.Printf("instance %s: %d jobs x %d machines, machine-load lower bound %d\n",
		in.Name, in.NumJobs(), in.NumMachines, in.LowerBoundMakespan())

	// Decoding rule comparison at equal budget.
	fmt.Println("\ndecoding rule comparison (serial GA, 3 seeds):")
	for _, rule := range []decode.OpenRule{decode.EarliestStart, decode.LPTTask, decode.LPTMachine} {
		mean := 0.0
		for _, seed := range []uint64{1, 2, 3} {
			prob := shopga.OpenShopProblem(in, rule, shop.Makespan)
			res := core.New(prob, rng.New(seed), core.Config[[]int]{
				Pop: 60, Elite: 1, Ops: shopga.SeqOps(in),
				Term: core.Termination{MaxGenerations: 80},
			}).Run()
			mean += res.Best.Obj
		}
		fmt.Printf("  %-15s mean best makespan %.1f\n", rule, mean/3)
	}

	prob := shopga.OpenShopProblem(in, decode.EarliestStart, shop.Makespan)

	// Kokosiński: every island broadcasts its best to all other islands.
	broadcast := island.New(rng.New(7), island.Config[[]int]{
		Islands: 5, SubPop: 16, Interval: 5, Epochs: 20, Migrants: 1,
		Topology: island.FullyConnected{},
		Replace:  island.ReplaceRandom, // immigrants replace random residents
		Engine:   core.Config[[]int]{Ops: shopga.SeqOps(in), Elite: 1},
		Problem:  func(int) core.Problem[[]int] { return prob },
	}).Run()
	fmt.Printf("\nbroadcast islands (Kokosinski): best %.0f in %d evaluations\n",
		broadcast.Best.Obj, broadcast.Evaluations)

	// Harmanani: ring neighbours every GN generations, full broadcast every
	// LN generations, GN << LN.
	twoLevel := island.New(rng.New(7), island.Config[[]int]{
		Islands: 5, SubPop: 16, Migrants: 1, Epochs: 20,
		Topology: island.Ring{},
		TwoLevel: &island.TwoLevel{GN: 5, LN: 20},
		Engine:   core.Config[[]int]{Ops: shopga.SeqOps(in), Elite: 1},
		Problem:  func(int) core.Problem[[]int] { return prob },
	}).Run()
	fmt.Printf("two-level GN=5/LN=20 (Harmanani): best %.0f in %d evaluations\n",
		twoLevel.Best.Obj, twoLevel.Evaluations)

	best := broadcast
	if twoLevel.Best.Obj < best.Best.Obj {
		best = twoLevel
	}
	s := decode.OpenShop(in, best.Best.Genome, decode.EarliestStart)
	fmt.Print(s.Gantt(80))
	if err := s.Validate(); err != nil {
		panic(err)
	}
	fmt.Println("schedule is feasible; open shop imposes no technological order")
}
