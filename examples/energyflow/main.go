// Energy-aware dynamic flexible flow shop — the "new integrated factors"
// the survey's Section II motivates (Xu et al. [8], Tang et al. [9]):
//
//   - machines run at selectable speeds; faster speeds shorten processing
//     but cost power ~ speed^2 (the classic cube-law simplified);
//   - the GA minimises a weighted sum of makespan and total energy, with
//     the speed levels as a third chromosome next to machine assignment
//     and operation sequence;
//   - a machine breakdown arrives mid-horizon and a predictive-reactive
//     rescheduling pass re-optimises the remaining work (Tang et al.'s
//     dynamic scheduling loop).
//
// Run with: go run ./examples/energyflow
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/decode"
	"repro/internal/island"
	"repro/internal/op"
	"repro/internal/rng"
	"repro/internal/shop"
	"repro/internal/shopga"
)

// genome carries assignment, sequence and per-operation speed levels.
type genome struct {
	Flex   shopga.FlexGenome
	Speeds []int
}

func cloneGenome(g genome) genome {
	return genome{
		Flex:   shopga.CloneFlex(g.Flex),
		Speeds: append([]int(nil), g.Speeds...),
	}
}

func main() {
	in := shop.GenerateFlexibleFlowShop("energy-ffs", 10, []int{2, 3, 2}, true, 4242)
	shop.WithSpeedLevels(in, []float64{1.0, 1.5, 2.0}, 2) // power ~ v^2
	objective := shop.Weighted([]float64{1, 0.05}, shop.Makespan, shop.Energy)

	fmt.Printf("instance %s: %d jobs, stages %v, speeds %v\n",
		in.Name, in.NumJobs(), stageSizes(in), in.SpeedLevels)

	best := optimise(in, objective, 1)
	s := decodeGenome(in, best)
	fmt.Printf("predictive schedule: makespan %d, energy %.0f, weighted %.1f\n",
		s.Makespan(), s.Energy(), objective(s))

	// --- dynamic event: machine 2 fails; remove it from eligibility and
	// reschedule the full remaining horizon (predictive-reactive policy).
	broken := 2
	repaired := removeMachine(in, broken)
	fmt.Printf("\nbreakdown: machine %d fails; rescheduling %d jobs without it\n",
		broken, repaired.NumJobs())
	best2 := optimise(repaired, objective, 2)
	s2 := decodeGenome(repaired, best2)
	fmt.Printf("reactive schedule:   makespan %d, energy %.0f, weighted %.1f\n",
		s2.Makespan(), s2.Energy(), objective(s2))
	fmt.Print(s2.Gantt(80))
	if err := s2.Validate(); err != nil {
		panic(err)
	}
	fmt.Println("reactive schedule is feasible")
}

func stageSizes(in *shop.Instance) []int {
	sizes := make([]int, len(in.Stages))
	for i, s := range in.Stages {
		sizes[i] = len(s)
	}
	return sizes
}

func decodeGenome(in *shop.Instance, g genome) *shop.Schedule {
	return decode.Flexible(in, g.Flex.Assign, g.Flex.Seq, g.Speeds)
}

func optimise(in *shop.Instance, objective shop.Objective, seed uint64) genome {
	flexOps := shopga.FlexOps(in)
	limits := shopga.EligibleCounts(in)
	prob := core.FuncProblem[genome]{
		RandomFn: func(r *rng.RNG) genome {
			speeds := make([]int, in.TotalOps())
			for i := range speeds {
				speeds[i] = r.Intn(len(in.SpeedLevels))
			}
			return genome{
				Flex: shopga.FlexGenome{
					Assign: decode.RandomAssignment(in, r),
					Seq:    decode.RandomOpSequence(in, r),
				},
				Speeds: speeds,
			}
		},
		EvaluateFn: func(g genome) float64 { return objective(decodeGenome(in, g)) },
		CloneFn:    cloneGenome,
	}
	speedLimits := make([]int, in.TotalOps())
	for i := range speedLimits {
		speedLimits[i] = len(in.SpeedLevels)
	}
	speedReset := op.ResetWithin(speedLimits)
	ops := core.Operators[genome]{
		Select: op.Tournament[genome](2),
		Cross: func(r *rng.RNG, a, b genome) (genome, genome) {
			f1, f2 := flexOps.Cross(r, a.Flex, b.Flex)
			s1, s2 := op.UniformInt(r, a.Speeds, b.Speeds)
			return genome{Flex: f1, Speeds: s1}, genome{Flex: f2, Speeds: s2}
		},
		Mutate: func(r *rng.RNG, g genome) {
			switch r.Intn(3) {
			case 0:
				op.ResetWithin(limits)(r, g.Flex.Assign)
			case 1:
				op.SwapMutation(r, g.Flex.Seq)
			default:
				speedReset(r, g.Speeds)
			}
		},
	}
	res := island.New(rng.New(seed), island.Config[genome]{
		Islands: 4, SubPop: 24, Interval: 5, Epochs: 25, Migrants: 1,
		Topology: island.BiRing{},
		Engine:   core.Config[genome]{Ops: ops, Elite: 1},
		Problem:  func(int) core.Problem[genome] { return prob },
	}).Run()
	return res.Best.Genome
}

// removeMachine rebuilds the instance without the broken machine,
// preserving at least one eligible machine per operation (operations whose
// only machine broke keep it with a large repair penalty on time).
func removeMachine(in *shop.Instance, broken int) *shop.Instance {
	out := &shop.Instance{
		Name: in.Name + "-degraded", Kind: in.Kind, NumMachines: in.NumMachines,
		Stages: in.Stages, SpeedLevels: in.SpeedLevels, PowerExp: in.PowerExp,
	}
	for _, job := range in.Jobs {
		ops := make([]shop.Operation, len(job.Ops))
		for k, o := range job.Ops {
			var ms, ts []int
			for i, m := range o.Machines {
				if m != broken {
					ms = append(ms, m)
					ts = append(ts, o.Times[i])
				}
			}
			if len(ms) == 0 {
				// Sole eligible machine broke: emergency repair slot at
				// triple time models outsourcing.
				ms = []int{o.Machines[0]}
				ts = []int{o.Times[0] * 3}
			}
			ops[k] = shop.Operation{Machines: ms, Times: ts}
		}
		out.Jobs = append(out.Jobs, shop.Job{
			Ops: ops, Release: job.Release, Due: job.Due, Weight: job.Weight,
		})
	}
	return out
}
