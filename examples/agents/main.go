// Agent-based parallel GA (Asadzadeh & Zamanifar [27]): a management agent
// splits the population across eight processor agents living on a virtual
// cube (three neighbours each); a synchronisation agent routes migrants
// between them. JADE middleware is substituted by goroutines and typed
// mailbox channels — the architecture, message flow and topology are
// preserved.
//
// Run with: go run ./examples/agents
package main

import (
	"fmt"

	"repro/internal/agents"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/shop"
	"repro/internal/shopga"
)

func main() {
	in := shop.GenerateJobShop("agents-12x6", 12, 6, 555001, 555002)
	prob := shopga.JobShopProblem(in, shop.Makespan)
	fmt.Printf("instance %s: %d jobs x %d machines\n", in.Name, in.NumJobs(), in.NumMachines)

	serial := agents.Run(prob, rng.New(1), agents.Config[[]int]{
		Processors: 1, SubPop: 80, Interval: 5, Epochs: 16,
		Engine: core.Config[[]int]{Ops: shopga.SeqOps(in), Elite: 1},
	})
	fmt.Printf("serial agent GA (1 x 80):    best %.0f (%d evaluations)\n",
		serial.Best.Obj, serial.Evaluations)

	cube := agents.Run(prob, rng.New(1), agents.Config[[]int]{
		Processors: 8, SubPop: 10, Interval: 5, Epochs: 16,
		Engine: core.Config[[]int]{Ops: shopga.SeqOps(in), Elite: 1},
	})
	fmt.Printf("cube agents (8 x 10):        best %.0f (%d evaluations)\n",
		cube.Best.Obj, cube.Evaluations)
	fmt.Println("\nper-agent bests (the cube keeps subpopulations diverse while")
	fmt.Println("migrants flow along the three cube edges of each agent):")
	for i, obj := range cube.PerAgent {
		fmt.Printf("  processor agent %d: %.0f\n", i, obj)
	}
}
