// Agent-based parallel GA (Asadzadeh & Zamanifar [27]) through the solver
// layer: the virtual-cube agent system is just another registry model, so
// comparing a single-agent run against the eight-agent cube — at the same
// total population and budget — is a two-Spec batch on a solver.Pool, with
// both runs solved concurrently.
//
// Run with: go run ./examples/agents
package main

import (
	"context"
	"fmt"

	"repro/internal/solver"
)

func main() {
	problem := solver.ProblemSpec{Kind: "job", Jobs: 12, Machines: 6, Seed: 555001}
	in, err := solver.BuildInstance(problem)
	if err != nil {
		panic(err)
	}
	fmt.Printf("instance %s: %d jobs x %d machines\n", in.Name, in.NumJobs(), in.NumMachines)

	specs := []solver.Spec{
		{ // one processor agent holding the whole population
			Problem: problem,
			Model:   "agents",
			Params:  solver.Params{Pop: 80, Islands: 1, Interval: 5},
			Budget:  solver.Budget{Generations: 80},
			Seed:    1,
		},
		{ // the virtual cube: 8 agents x 10 individuals, 3 neighbours each
			Problem: problem,
			Model:   "agents",
			Params:  solver.Params{Pop: 80, Islands: 8, Interval: 5},
			Budget:  solver.Budget{Generations: 80},
			Seed:    1,
		},
	}
	items := (&solver.Pool{Workers: 2}).Solve(context.Background(), specs)
	labels := []string{"serial agent GA (1 x 80)", "cube agents (8 x 10)"}
	for i, it := range items {
		if it.Err != nil {
			panic(it.Err)
		}
		fmt.Printf("%-26s best %.0f (%d evaluations, %s)\n",
			labels[i]+":", it.Result.BestObjective, it.Result.Evaluations,
			it.Result.RoundedElapsed())
	}
	fmt.Println("\nsame budget, same seed: the cube trades panmictic mixing for")
	fmt.Println("migration along the three cube edges of each processor agent")
}
