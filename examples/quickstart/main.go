// Quickstart: solve the classic ft06 job shop (proven optimum 55) through
// the unified solver layer — the shortest path through the library's API:
//
//	spec -> solver.Solve -> result + schedule.
//
// The Spec is plain data (it round-trips through JSON), so the same
// request could arrive over a wire, sit in a batch file, or be built in
// code as here.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"repro/internal/shop"
	"repro/internal/solver"
)

func main() {
	// One declarative request: the embedded ft06 benchmark, random-keys
	// priorities decoded by Giffler-Thompson, the island model (Table V),
	// stopping as soon as the known optimum is reached.
	spec := solver.Spec{
		Problem:  solver.ProblemSpec{Instance: "ft06"},
		Encoding: "keys",
		Model:    "island",
		Params:   solver.Params{Pop: 200, Islands: 4, Interval: 5, Migrants: 2, Elite: 2},
		Budget:   solver.Budget{Generations: 500, Target: shop.FT06Optimum, TargetSet: true},
		Seed:     2024,
	}

	res, err := solver.Solve(context.Background(), spec)
	if err != nil {
		panic(err)
	}

	fmt.Printf("ft06 via %s [%s]: makespan %.0f (optimum %d) after %d evaluations in %s\n",
		res.Model, res.Encoding, res.BestObjective, shop.FT06Optimum,
		res.Evaluations, res.RoundedElapsed())
	fmt.Print(res.Schedule.Gantt(80))
	fmt.Println("schedule is feasible (Table I conditions hold; solver validated it)")

	// The same problem through a different model is a one-field change.
	spec.Model = "cellular"
	res, err = solver.Solve(context.Background(), spec)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ft06 via %s [%s]: makespan %.0f after %d evaluations\n",
		res.Model, res.Encoding, res.BestObjective, res.Evaluations)
}
