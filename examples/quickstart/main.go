// Quickstart: solve the classic ft06 job shop (proven optimum 55) through
// the solver's job Service — the primary entry point of the library:
//
//	spec -> Service.Submit -> Job{Events, Await} -> result + schedule.
//
// The Spec is plain data (it round-trips through JSON), so the same
// request could arrive over a wire (cmd/schedserver serves exactly this
// API over HTTP), sit in a batch file, or be built in code as here; the
// Job streams typed progress events while the model runs.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"repro/internal/shop"
	"repro/internal/solver"
)

func main() {
	// One declarative request: the embedded ft06 benchmark, random-keys
	// priorities decoded by Giffler-Thompson, the island model (Table V),
	// stopping as soon as the known optimum is reached.
	spec := solver.Spec{
		Problem:  solver.ProblemSpec{Instance: "ft06"},
		Encoding: "keys",
		Model:    "island",
		Params:   solver.Params{Pop: 200, Islands: 4, Interval: 5, Migrants: 2, Elite: 2},
		Budget:   solver.Budget{Generations: 500, Target: shop.FT06Optimum, TargetSet: true},
		Seed:     2024,
	}

	svc := solver.NewService(2)
	job, err := svc.Submit(context.Background(), spec)
	if err != nil {
		panic(err)
	}
	// The job streams typed events while it runs: watch the incumbent
	// makespan fall and the island migrations tick by.
	for ev := range job.Events() {
		switch ev.Type {
		case solver.EventImproved:
			fmt.Printf("  gen %3d: new best %.0f\n", ev.Generation, ev.BestObjective)
		case solver.EventMigration:
			fmt.Printf("  gen %3d: migration epoch %d across %d islands\n",
				ev.Generation, ev.Epoch, ev.Islands)
		}
	}
	res, err := job.Await(context.Background())
	if err != nil {
		panic(err)
	}

	fmt.Printf("ft06 via %s [%s]: makespan %.0f (%s reference %.0f, gap %+.1f%%) after %d evaluations in %s\n",
		res.Model, res.Encoding, res.BestObjective, res.RefKind, res.Reference,
		100*res.Gap, res.Evaluations, res.RoundedElapsed())
	fmt.Print(res.Schedule.Gantt(80))
	fmt.Println("schedule is feasible (Table I conditions hold; solver validated it)")

	// The same problem through a different model is a one-field change —
	// and the blocking Solve still exists for call-and-wait uses.
	spec.Model = "cellular"
	res, err = solver.Solve(context.Background(), spec)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ft06 via %s [%s]: makespan %.0f after %d evaluations\n",
		res.Model, res.Encoding, res.BestObjective, res.Evaluations)
}
