// Quickstart: solve the classic ft06 job shop (proven optimum 55) with an
// island GA over Giffler-Thompson priorities — the shortest path through
// the library's API:
//
//	instance -> problem -> island model -> schedule.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/decode"
	"repro/internal/island"
	"repro/internal/rng"
	"repro/internal/shop"
	"repro/internal/shopga"
)

func main() {
	// 1. The instance: 6 jobs x 6 machines, embedded benchmark data.
	in := shop.FT06()

	// 2. The problem: random-keys priorities decoded by the Giffler-
	//    Thompson active schedule builder, minimising the makespan.
	prob := shopga.GTProblem(in, shop.Makespan)

	// 3. The parallel model: 4 islands on a ring, migrating the 2 best
	//    individuals every 5 generations (the survey's Table V loop).
	res := island.New(rng.New(2024), island.Config[[]float64]{
		Islands: 4, SubPop: 50, Interval: 5, Migrants: 2, Epochs: 100,
		Topology: island.Ring{},
		Engine:   core.Config[[]float64]{Ops: shopga.KeysOps(), Elite: 2},
		Problem:  func(int) core.Problem[[]float64] { return prob },
		Target:   shop.FT06Optimum, TargetSet: true,
	}).Run()

	// 4. The schedule: decode the winning genome and show it.
	schedule := decode.GifflerThompson(in, res.Best.Genome)
	fmt.Printf("ft06: makespan %.0f (optimum %d) after %d evaluations on %d islands\n",
		res.Best.Obj, shop.FT06Optimum, res.Evaluations, res.IslandsLeft)
	fmt.Print(schedule.Gantt(80))
	if err := schedule.Validate(); err != nil {
		panic(err)
	}
	fmt.Println("schedule is feasible (Table I conditions hold)")
}
