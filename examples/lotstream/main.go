// Lot streaming on a flexible job shop with sequence-dependent setup times
// — the Defersha & Chen workload ([35], [36]) the survey discusses at
// length. The GA optimises three things at once:
//
//   - how each job's batch splits into sublots (random-keys segment),
//   - which eligible machine runs every sublot operation,
//   - the processing sequence,
//
// and the island model compares the ring / mesh / fully-connected
// migration topologies on the same search, reproducing the paper's
// topology experiment at example scale.
//
// Run with: go run ./examples/lotstream
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/decode"
	"repro/internal/island"
	"repro/internal/rng"
	"repro/internal/shop"
	"repro/internal/shopga"
)

const sublotsPerJob = 2

func main() {
	base := shop.GenerateFlexibleJobShop("lotstream-fjs", 6, 5, 3, 3, 20260610)
	shop.WithSetupTimes(base, 2, 9, 20260611)
	shop.WithBatchSizes(base, 6, 12, 20260612)
	fmt.Printf("instance %s: %d jobs, batches %v, SDST on %d machines\n",
		base.Name, base.NumJobs(), base.BatchSize, base.NumMachines)

	// Whole-batch baseline: no lot streaming (one sublot per job).
	whole := make([][]int, base.NumJobs())
	for j := range whole {
		whole[j] = []int{base.BatchSize[j]}
	}
	wholeInst, _ := decode.ExpandSublots(base, whole)
	wholeBest := solve(wholeInst, island.Ring{}, 1)
	fmt.Printf("no lot streaming: makespan %.0f\n", wholeBest)

	// Fixed 2-way equal split (the experiment harness's configuration).
	sizes := make([][]int, base.NumJobs())
	for j := range sizes {
		sizes[j] = decode.SublotSizes(base.BatchSize[j], sublotsPerJob, []float64{0.5, 0.5})
	}
	split, _ := decode.ExpandSublots(base, sizes)
	fmt.Println("\ntopology comparison with 2 equal sublots per job:")
	for _, topo := range []island.Topology{island.Ring{}, island.Torus2D{}, island.FullyConnected{}} {
		best := solve(split, topo, 2)
		fmt.Printf("  %-16s best makespan %.0f\n", topo.Name(), best)
	}

	// GA-optimised sublot sizes: the key vector is part of the genome.
	best, bestSizes := solveWithSizes(base, 3)
	fmt.Printf("\nGA-optimised sublot sizes: makespan %.0f with splits %v\n", best, bestSizes)
	fmt.Println("(lot streaming lets sublots of one job overlap across machines,")
	fmt.Println(" which is where the makespan reduction comes from)")
}

// solve runs the island GA on an expanded (sublots-as-jobs) instance.
func solve(in *shop.Instance, topo island.Topology, seed uint64) float64 {
	prob := shopga.FlexibleProblem(in, shop.Makespan)
	res := island.New(rng.New(seed), island.Config[shopga.FlexGenome]{
		Islands: 6, SubPop: 16, Interval: 5, Epochs: 20, Migrants: 1,
		Topology: topo,
		Engine:   core.Config[shopga.FlexGenome]{Ops: shopga.FlexOps(in), Elite: 1},
		Problem:  func(int) core.Problem[shopga.FlexGenome] { return prob },
	}).Run()
	return res.Best.Obj
}

// sizedGenome couples sublot-size keys with the flexible genome of the
// induced expanded instance. Because the expansion changes the instance
// shape only through sublot sizes (2 sublots per job throughout), the
// assignment/sequence chromosomes stay structurally valid.
type sizedGenome struct {
	Keys []float64 // sublotsPerJob keys per job
	Flex shopga.FlexGenome
}

func solveWithSizes(base *shop.Instance, seed uint64) (float64, [][]int) {
	// The expanded shape is fixed (2 sublots per job), so pre-compute a
	// template expansion for genome sizing.
	template := equalSplit(base)
	tmplInst, _ := decode.ExpandSublots(base, template)

	sizesOf := func(keys []float64) [][]int {
		sizes := make([][]int, base.NumJobs())
		for j := range sizes {
			sizes[j] = decode.SublotSizes(base.BatchSize[j], sublotsPerJob,
				keys[j*sublotsPerJob:(j+1)*sublotsPerJob])
		}
		return sizes
	}
	evaluate := func(g sizedGenome) float64 {
		inst, _ := decode.ExpandSublots(base, sizesOf(g.Keys))
		s := decode.Flexible(inst, g.Flex.Assign, g.Flex.Seq, nil)
		return shop.Makespan(s)
	}
	prob := core.FuncProblem[sizedGenome]{
		RandomFn: func(r *rng.RNG) sizedGenome {
			keys := make([]float64, base.NumJobs()*sublotsPerJob)
			for i := range keys {
				keys[i] = r.Float64()
			}
			return sizedGenome{
				Keys: keys,
				Flex: shopga.FlexGenome{
					Assign: decode.RandomAssignment(tmplInst, r),
					Seq:    decode.RandomOpSequence(tmplInst, r),
				},
			}
		},
		EvaluateFn: evaluate,
		CloneFn: func(g sizedGenome) sizedGenome {
			return sizedGenome{
				Keys: append([]float64(nil), g.Keys...),
				Flex: shopga.CloneFlex(g.Flex),
			}
		},
	}
	flexOps := shopga.FlexOps(tmplInst)
	keysOps := shopga.KeysOps()
	ops := core.Operators[sizedGenome]{
		Select: func(r *rng.RNG, pop []core.Individual[sizedGenome]) int {
			a, b := r.Intn(len(pop)), r.Intn(len(pop))
			if pop[a].Fit >= pop[b].Fit {
				return a
			}
			return b
		},
		Cross: func(r *rng.RNG, a, b sizedGenome) (sizedGenome, sizedGenome) {
			k1, k2 := keysOps.Cross(r, a.Keys, b.Keys)
			f1, f2 := flexOps.Cross(r, a.Flex, b.Flex)
			return sizedGenome{Keys: k1, Flex: f1}, sizedGenome{Keys: k2, Flex: f2}
		},
		Mutate: func(r *rng.RNG, g sizedGenome) {
			if r.Bool(0.3) {
				keysOps.Mutate(r, g.Keys)
			} else {
				flexOps.Mutate(r, g.Flex)
			}
		},
	}
	res := island.New(rng.New(seed), island.Config[sizedGenome]{
		Islands: 6, SubPop: 16, Interval: 5, Epochs: 25, Migrants: 1,
		Topology: island.FullyConnected{},
		Engine:   core.Config[sizedGenome]{Ops: ops, Elite: 1},
		Problem:  func(int) core.Problem[sizedGenome] { return prob },
	}).Run()
	return res.Best.Obj, sizesOf(res.Best.Genome.Keys)
}

func equalSplit(base *shop.Instance) [][]int {
	sizes := make([][]int, base.NumJobs())
	for j := range sizes {
		sizes[j] = decode.SublotSizes(base.BatchSize[j], sublotsPerJob, []float64{0.5, 0.5})
	}
	return sizes
}
