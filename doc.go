// Package repro is a complete Go reproduction of "A Survey on Parallel
// Genetic Algorithms for Shop Scheduling Problems" (Luo & El Baz, IPDPS
// Workshops 2018): the full family of parallel GA models the survey
// taxonomises (master-slave, fine-grained, island, hybrid), every shop
// scheduling environment it covers (flow / job / open shop and the
// flexible variants, with setups, lot streaming, blocking, fuzzy and
// stochastic extensions), and an experiment harness that regenerates the
// survey's five tables plus the quantitative claims of the ~25 surveyed
// works as figure-equivalent experiments.
//
// The internal/solver package is the unified entry point, and its job
// Service the primary API: a declarative, JSON-serialisable Spec
// (statically checked by Spec.Validate, which reports every field-path
// error at once) is submitted through Service.Submit and becomes a Job —
// observable via Job.Events (typed Started/Generation/Improved/Migration/
// Done progress streamed from the engines' generation and epoch seams),
// awaitable via Job.Await, and cancellable mid-run with a valid partial
// result. The blocking Solve remains for call-and-wait uses, and the
// concurrent batch Pool (a thin layer over the Service, with
// deterministic per-run seed derivation) covers many-scenario workloads.
// Every Result embeds its reference objective, kind and gap.
//
// internal/serve exposes the Service over HTTP — cmd/schedserver is the
// scheduling daemon (REST + Server-Sent-Events progress streams, bounded
// concurrency, per-job deadlines, graceful drain) and serve/client the
// typed Go client.
//
// Jobs are durable when the daemon runs with a store directory: the
// crash-safe internal/jobstore persists per-job records with atomic
// renames and CRC-checksummed checkpoint frames (torn or corrupt frames
// are quarantined, never fatal), the checkpointable models snapshot
// their full state — flat population for serial/ms, a per-deme layout
// (population, objectives, incumbent, RNG stream, epoch counter) for
// the epoch models island/hybrid — through solver.SolveWithCheckpoints
// / Service.OnCheckpoint, and a
// restarted daemon replays the store: terminal jobs served from disk,
// in-flight jobs resumed bit-identically from their newest checkpoint
// with the wall budget they had left (cold restart is the validated
// fallback for anything damaged or non-checkpointable). The client
// retries transient failures with backoff, deduplicates submissions via
// idempotency keys, and reconnects severed event streams with
// Last-Event-ID. A SIGKILL-mid-job e2e plus a fault-injection suite
// (jobstore.FaultStore) pin the recovery paths.
//
// internal/federation scales the island model across machines: daemons
// started with the same -peers list form a static, coordinator-less
// fleet (rank = index in the sorted list), a Spec submitted with
// params.federate to any node fans its demes across the fleet, and the
// nodes exchange migrant elites each migration epoch over
// POST /v1/federation/migrants — packed genomes re-validated on
// arrival, injected at epoch barriers in sender-rank order, per-rank
// seeds derived via rng.SplitN, so a healthy federated run is
// replayable by seed. A peer missing a barrier is degraded (skipped
// thereafter, surfaced as a peer_degraded event and a counter on
// GET /v1/stats, the Prometheus endpoint) while the submitting node
// always reduces a best-of-fleet Result with per-node provenance. With
// -fed-failover, degradation is the fallback, not the first response:
// shards piggyback their newest epoch checkpoint on owner-bound migrant
// batches, and a shard lost with its node is health-probed, then
// resumed warm from that checkpoint on the least-loaded survivor, the
// rebinding broadcast fleet-wide so barriers wait for it again.
//
// Evaluation — the hot path of every parallel model — is a three-rung
// ladder in internal/decode: schedule-building oracle decoders (reference
// semantics, final results), allocation-free makespan kernels decoding
// into a reusable Scratch workspace, and batch kernels (BatchScratch) that
// decode whole slices of genomes in 4-wide lockstep — hiding the scalar
// decoder's completion-time dependency chain behind neighbouring genomes'
// arithmetic, with precomputed flat operation tables and scalar fallback
// for the irregular kinds. Property and fuzz tests pin each rung to the
// one below bit for bit, and BENCH_hotpath.json records the measured gaps.
// Problems expose the rungs through the core.LocalEvalProblem and
// core.BatchEvalProblem seams; evaluators route spans to per-worker batch
// closures via core.BatchSpanEvaluator.
// Above the kernels, core.Config.Workers selects the sharded generation
// pipeline: persistent workers execute whole shards of each generation
// (selection, crossover, mutation, evaluation) end-to-end with per-shard
// RNG substreams (rng.SplitN) and worker-owned scratches — each shard of 4
// children is exactly one batch tile — allocation-free and bit-identical
// for any worker count; Spec.Params.Workers threads the width through
// every model.
//
// See README.md for the layout, the solver API and the performance
// architecture, DESIGN.md for the system inventory and per-experiment
// index, and EXPERIMENTS.md for paper-vs-measured results. The top-level
// bench suites (bench_test.go, hotpath_bench_test.go) time one kernel per
// table, the solver pool, and the alloc-guarded evaluation hot path.
package repro
