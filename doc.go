// Package repro is a complete Go reproduction of "A Survey on Parallel
// Genetic Algorithms for Shop Scheduling Problems" (Luo & El Baz, IPDPS
// Workshops 2018): the full family of parallel GA models the survey
// taxonomises (master-slave, fine-grained, island, hybrid), every shop
// scheduling environment it covers (flow / job / open shop and the
// flexible variants, with setups, lot streaming, blocking, fuzzy and
// stochastic extensions), and an experiment harness that regenerates the
// survey's five tables plus the quantitative claims of the ~25 surveyed
// works as figure-equivalent experiments.
//
// The internal/solver package is the unified entry point: a declarative,
// JSON-serialisable Spec resolved through a model registry, with a
// concurrent batch Pool for many-scenario workloads.
//
// See README.md for the layout and the solver API, DESIGN.md for the
// system inventory and per-experiment index, and EXPERIMENTS.md for
// paper-vs-measured results. The top-level bench suite (bench_test.go)
// times one kernel per table plus the solver pool.
package repro
