// Command instgen generates Taillard-style shop scheduling instances as
// JSON files consumable by shopsched -instance.
//
// Usage:
//
//	instgen -kind job -jobs 15 -machines 10 -seed 840612802 -o js15x10.json
//	instgen -kind flow -jobs 20 -machines 5 -due 1.5 -setups -o fs.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/shop"
	"repro/internal/solver"
)

func main() {
	var (
		kind     = flag.String("kind", "job", "instance kind: flow, job, open, fjs, ffs")
		jobs     = flag.Int("jobs", 10, "number of jobs")
		machines = flag.Int("machines", 5, "number of machines")
		seed     = flag.Int("seed", 479340445, "Taillard LCG seed")
		due      = flag.Float64("due", 0, "due-date tightness (TWK rule); 0 disables")
		releases = flag.Int("releases", 0, "max release date; 0 disables")
		setups   = flag.Bool("setups", false, "attach sequence-dependent setup times Unif[1,9]")
		batches  = flag.Bool("batches", false, "attach lot-streaming batch sizes Unif[6,12]")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var in *shop.Instance
	name := fmt.Sprintf("%s-%dx%d-s%d", *kind, *jobs, *machines, *seed)
	// ClampInstanceSeed folds any int64 into the Taillard range, so a
	// hand-typed out-of-range seed degrades deterministically, not with a
	// panic.
	s := solver.ClampInstanceSeed(int64(*seed))
	switch *kind {
	case "flow":
		in = shop.GenerateFlowShop(name, *jobs, *machines, s)
	case "job":
		in = shop.GenerateJobShop(name, *jobs, *machines, s, solver.ClampInstanceSeed(int64(s)+1))
	case "open":
		in = shop.GenerateOpenShop(name, *jobs, *machines, s)
	case "fjs":
		in = shop.GenerateFlexibleJobShop(name, *jobs, *machines, *machines, 3, s)
	case "ffs":
		half := *machines / 2
		if half < 1 {
			half = 1
		}
		in = shop.GenerateFlexibleFlowShop(name, *jobs, []int{half, *machines - half}, true, s)
	default:
		fmt.Fprintf(os.Stderr, "instgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if *releases > 0 {
		shop.WithReleases(in, *releases, s+2)
	}
	if *due > 0 {
		shop.WithDueDates(in, *due)
	}
	if *setups {
		shop.WithSetupTimes(in, 1, 9, s+3)
	}
	if *batches {
		shop.WithBatchSizes(in, 6, 12, s+4)
	}
	if err := in.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "instgen:", err)
		os.Exit(1)
	}
	data, err := in.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "instgen:", err)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Println(string(data))
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "instgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d jobs x %d machines, %d ops)\n", *out, in.NumJobs(), in.NumMachines, in.TotalOps())
}
