package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve/client"
	"repro/internal/solver"
)

// syncBuffer is a goroutine-safe writer for capturing the daemon's
// stdout while it runs.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDaemonLifecycle boots the daemon on an ephemeral port, drives one
// job through the typed client, and shuts it down through the signal
// context — the exact path a SIGINT takes.
func TestDaemonLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain-ms", "2000"}, &out)
	}()

	// Wait for the listening line and extract the bound address.
	var base string
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if s := out.String(); strings.Contains(s, "listening on ") {
			line := s[strings.Index(s, "listening on ")+len("listening on "):]
			base = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("daemon never reported its address:\n%s", out.String())
	}

	c := &client.Client{BaseURL: base}
	cctx, ccancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer ccancel()
	job, err := c.Submit(cctx, solver.Spec{
		Problem: solver.ProblemSpec{Instance: "ft06"},
		Model:   "serial",
		Params:  solver.Params{Pop: 30},
		Budget:  solver.Budget{Generations: 30},
		Seed:    1,
	})
	if err != nil {
		t.Fatalf("submit against daemon: %v", err)
	}
	final, err := c.Await(cctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != solver.JobDone || final.Result == nil {
		t.Fatalf("job %+v", final)
	}
	if final.Result.Reference != 55 {
		t.Errorf("ft06 reference %v", final.Result.Reference)
	}

	// Shutdown path: cancel the run context (what SIGINT does) and expect
	// a clean, prompt exit.
	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not stop:\n%s", out.String())
	}
	if s := out.String(); !strings.Contains(s, "schedserver stopped") {
		t.Errorf("missing stop line:\n%s", s)
	}
}

// TestDaemonFlagErrors: bad flags fail cleanly; -h succeeds.
func TestDaemonFlagErrors(t *testing.T) {
	var out syncBuffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run(context.Background(), []string{"-h"}, &out); err != nil {
		t.Errorf("-h: %v", err)
	}
	if err := run(context.Background(), []string{"-addr", "256.256.256.256:99999"}, &out); err == nil {
		t.Error("unbindable address accepted")
	}
}

// TestHelperDaemon is not a test: it is the child process of the
// crash-recovery e2e below. It runs the real daemon main loop with the
// arguments passed through the environment, so the parent test can
// SIGKILL it mid-job exactly as a crashed host would.
func TestHelperDaemon(t *testing.T) {
	if os.Getenv("SCHEDSERVER_HELPER") != "1" {
		t.Skip("not a test: helper process for TestDaemonCrashRecovery")
	}
	args := strings.Split(os.Getenv("SCHEDSERVER_ARGS"), "\n")
	if err := run(context.Background(), args, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// startDaemonProcess spawns the daemon as a real OS process (via the
// helper above) and returns the process, its base URL, and the
// line-buffered stdout.
func startDaemonProcess(t *testing.T, out *syncBuffer, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperDaemon$", "-test.v")
	cmd.Env = append(os.Environ(),
		"SCHEDSERVER_HELPER=1",
		"SCHEDSERVER_ARGS="+strings.Join(args, "\n"),
	)
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting daemon process: %v", err)
	}
	return cmd
}

// waitForLine polls the buffer until pred finds a match or the deadline
// passes.
func waitForLine(t *testing.T, out *syncBuffer, what string, pred func(string) (string, bool)) string {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if got, ok := pred(out.String()); ok {
			return got
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s:\n%s", what, out.String())
	return ""
}

// listenAddr extracts the daemon's bound base URL from its stdout.
func listenAddr(s string) (string, bool) {
	i := strings.Index(s, "listening on ")
	if i < 0 {
		return "", false
	}
	line := s[i+len("listening on "):]
	return strings.TrimSpace(strings.SplitN(line, "\n", 2)[0]), true
}

// TestDaemonCrashRecovery is the end-to-end durability gate: a daemon
// with a job store is SIGKILLed mid-run — no drain, no flush, exactly a
// crash — and a restarted daemon over the same store directory resumes
// the job from its last checkpoint and finishes it with a valid result
// whose gap is no worse than the committed ft10 baseline.
func TestDaemonCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}
	storeDir := t.TempDir()
	var out1 syncBuffer
	daemon1 := startDaemonProcess(t, &out1,
		"-addr", "127.0.0.1:0", "-store-dir", storeDir, "-checkpoint-every", "5")
	defer daemon1.Process.Kill()
	base := waitForLine(t, &out1, "daemon 1 address", listenAddr)

	// A long ft10 run: big enough that the kill lands mid-job, resumable
	// (ms is engine-driven), submitted idempotently like a crash-safe
	// client would.
	c := &client.Client{BaseURL: base}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	spec := solver.Spec{
		Problem: solver.ProblemSpec{Instance: "ft10"},
		Model:   "ms",
		Params:  solver.Params{Pop: 80, Workers: 2},
		Budget:  solver.Budget{Generations: 20000},
		Seed:    9,
	}
	job, err := c.SubmitIdempotent(ctx, spec, "crash-e2e")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Kill only after at least one checkpoint frame is durably on disk.
	ckptLog := filepath.Join(storeDir, job.ID, "checkpoints.log")
	waitForLine(t, &out1, "first checkpoint", func(string) (string, bool) {
		if fi, err := os.Stat(ckptLog); err == nil && fi.Size() > 0 {
			return "", true
		}
		return "", false
	})
	if err := daemon1.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	_ = daemon1.Wait()

	// Restart over the same store: the job must resume warm and finish.
	var out2 syncBuffer
	daemon2 := startDaemonProcess(t, &out2,
		"-addr", "127.0.0.1:0", "-store-dir", storeDir, "-checkpoint-every", "5")
	defer func() {
		daemon2.Process.Kill()
		daemon2.Wait()
	}()
	base2 := waitForLine(t, &out2, "daemon 2 address", listenAddr)
	waitForLine(t, &out2, "warm resume log", func(s string) (string, bool) {
		i := strings.Index(s, "resumed job "+job.ID+" from generation ")
		if i < 0 {
			return "", false
		}
		return "", true
	})

	c2 := &client.Client{BaseURL: base2}
	final, err := c2.Await(ctx, job.ID)
	if err != nil {
		t.Fatalf("await after restart: %v", err)
	}
	if final.State != solver.JobDone || final.Result == nil {
		t.Fatalf("final %+v", final)
	}
	res := final.Result
	if res.Reference != 930 || res.BestObjective <= 0 {
		t.Fatalf("result %+v", res)
	}
	// The committed BENCH_suite baseline for ms/ft10 is gap 0.0441; allow
	// the CI smoke margin on top. A resume that lost the population or the
	// RNG streams would land far outside this.
	const baseline, margin = 0.0441, 0.05
	if res.Gap > baseline+margin {
		t.Errorf("post-recovery gap %.4f exceeds baseline %.4f + %.2f", res.Gap, baseline, margin)
	}
	// The idempotency key survived the crash: replaying the submission
	// resolves to the same (now finished) job instead of a duplicate run.
	again, err := c2.SubmitIdempotent(ctx, spec, "crash-e2e")
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != job.ID {
		t.Errorf("idempotent replay after crash created %s, want %s", again.ID, job.ID)
	}
}
