package main

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve/client"
	"repro/internal/solver"
)

// syncBuffer is a goroutine-safe writer for capturing the daemon's
// stdout while it runs.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDaemonLifecycle boots the daemon on an ephemeral port, drives one
// job through the typed client, and shuts it down through the signal
// context — the exact path a SIGINT takes.
func TestDaemonLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain-ms", "2000"}, &out)
	}()

	// Wait for the listening line and extract the bound address.
	var base string
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if s := out.String(); strings.Contains(s, "listening on ") {
			line := s[strings.Index(s, "listening on ")+len("listening on "):]
			base = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("daemon never reported its address:\n%s", out.String())
	}

	c := &client.Client{BaseURL: base}
	cctx, ccancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer ccancel()
	job, err := c.Submit(cctx, solver.Spec{
		Problem: solver.ProblemSpec{Instance: "ft06"},
		Model:   "serial",
		Params:  solver.Params{Pop: 30},
		Budget:  solver.Budget{Generations: 30},
		Seed:    1,
	})
	if err != nil {
		t.Fatalf("submit against daemon: %v", err)
	}
	final, err := c.Await(cctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != solver.JobDone || final.Result == nil {
		t.Fatalf("job %+v", final)
	}
	if final.Result.Reference != 55 {
		t.Errorf("ft06 reference %v", final.Result.Reference)
	}

	// Shutdown path: cancel the run context (what SIGINT does) and expect
	// a clean, prompt exit.
	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not stop:\n%s", out.String())
	}
	if s := out.String(); !strings.Contains(s, "schedserver stopped") {
		t.Errorf("missing stop line:\n%s", s)
	}
}

// TestDaemonFlagErrors: bad flags fail cleanly; -h succeeds.
func TestDaemonFlagErrors(t *testing.T) {
	var out syncBuffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run(context.Background(), []string{"-h"}, &out); err != nil {
		t.Errorf("-h: %v", err)
	}
	if err := run(context.Background(), []string{"-addr", "256.256.256.256:99999"}, &out); err == nil {
		t.Error("unbindable address accepted")
	}
}
