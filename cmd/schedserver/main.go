// Command schedserver is the HTTP scheduling daemon: the solver's job
// Service behind a REST+SSE API. Clients submit solver Specs as jobs,
// poll or stream their typed progress events, and cancel them; the daemon
// bounds concurrency, applies a per-job wall deadline, and drains
// gracefully on SIGINT/SIGTERM.
//
//	schedserver -addr :8410 -max-concurrent 8 -max-wall-ms 60000
//
// With -peers, daemons form a static federation fleet: a Spec submitted
// with params.federate to any node fans its islands out across the fleet
// and the nodes exchange migrant elites each migration epoch (see
// internal/federation):
//
//	schedserver -addr :8410 -self http://10.0.0.1:8410 \
//	  -peers http://10.0.0.1:8410,http://10.0.0.2:8410
//
//	curl -s localhost:8410/v1/models
//	curl -s -X POST localhost:8410/v1/jobs -d '{"problem":{"instance":"ft10"},"model":"island"}'
//	curl -s localhost:8410/v1/jobs/j000001
//	curl -N  localhost:8410/v1/jobs/j000001/events        # SSE stream
//	curl -s -X DELETE localhost:8410/v1/jobs/j000001      # cancel
//
// internal/serve/client is the typed Go client for the same API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/federation"
	"repro/internal/jobstore"
	"repro/internal/serve"
)

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "schedserver:", err)
		os.Exit(1)
	}
}

// run is main behind a testable seam: it binds the listener, serves until
// ctx is cancelled, then drains — no new jobs, in-flight jobs finish
// within the drain budget or are cancelled at their next generation
// boundary — and shuts the HTTP server down.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("schedserver", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8410", "listen address")
		maxConcurrent = fs.Int("max-concurrent", 0, "jobs running at once (0: GOMAXPROCS)")
		maxActive     = fs.Int("max-active", 256, "pending+running jobs before submissions get 429 (<0: unbounded)")
		maxWallMS     = fs.Int64("max-wall-ms", 120000, "per-job wall deadline cap in milliseconds (<0: uncapped)")
		maxRetained   = fs.Int("max-retained", 1024, "finished jobs kept for status queries")
		drainMS       = fs.Int64("drain-ms", 10000, "graceful drain budget on shutdown in milliseconds")
		storeDir      = fs.String("store-dir", "", "job store directory for durable jobs (empty: in-memory only)")
		ckptEvery     = fs.Int("checkpoint-every", 0, "checkpoint cadence in generations for durable jobs (0: default 20, <0: records only)")
		eventHistory  = fs.Int("event-history", 0, "per-job SSE replay ring size (0: default 256)")
		peers         = fs.String("peers", "", "comma-separated federation fleet base URLs, self included (empty: no federation)")
		self          = fs.String("self", "", "this node's base URL as it appears in -peers (default: http://<addr>)")
		epochTimeout  = fs.Int64("fed-epoch-timeout-ms", 5000, "migration-epoch barrier wait before degrading a peer, in milliseconds")
		fedFailover   = fs.Bool("fed-failover", false, "resume shards lost to a dead fleet node from their last epoch checkpoint on a surviving node")
		probeMS       = fs.Int64("fed-probe-interval-ms", 500, "delay between health probes of a silent peer before declaring it dead")
	)
	switch err := fs.Parse(args); {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		return nil
	default:
		return errors.New("invalid flags (see usage above)")
	}

	cfg := serve.Config{
		MaxConcurrent:   *maxConcurrent,
		MaxActive:       *maxActive,
		MaxWallMillis:   *maxWallMS,
		MaxRetained:     *maxRetained,
		CheckpointEvery: *ckptEvery,
		EventHistory:    *eventHistory,
	}
	if *storeDir != "" {
		store, err := jobstore.Open(*storeDir)
		if err != nil {
			return err
		}
		cfg.Store = store
		// Recovery and durability diagnostics go to stdout; the e2e
		// crash-recovery test greps these lines.
		cfg.Logf = func(format string, a ...any) {
			fmt.Fprintf(stdout, "schedserver: "+format+"\n", a...)
		}
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "schedserver listening on http://%s\n", ln.Addr())

	handler := srv.Handler()
	if *peers != "" {
		fleet := strings.Split(*peers, ",")
		for i := range fleet {
			fleet[i] = strings.TrimSpace(fleet[i])
		}
		me := *self
		if me == "" {
			me = "http://" + ln.Addr().String()
		}
		node, err := federation.New(federation.Config{
			Self:            me,
			Peers:           fleet,
			Service:         srv.Service(),
			EpochTimeout:    time.Duration(*epochTimeout) * time.Millisecond,
			FailoverEnabled: *fedFailover,
			ProbeInterval:   time.Duration(*probeMS) * time.Millisecond,
			Logf: func(format string, a ...any) {
				fmt.Fprintf(stdout, "schedserver: "+format+"\n", a...)
			},
		})
		if err != nil {
			return err
		}
		srv.SetFederation(node)
		// The federation endpoints compose in front of the main API.
		root := http.NewServeMux()
		root.Handle("/v1/federation/", node.Handler())
		root.Handle("/", handler)
		handler = root
		fmt.Fprintf(stdout, "schedserver federated: rank %d of %d peers\n", node.Rank(), len(node.Peers()))
	}

	httpSrv := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(stdout, "schedserver draining (budget %dms)\n", *drainMS)
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainMS)*time.Millisecond)
	defer cancel()
	// Drain the job service first: jobs reach terminal states, event
	// streams see their done events and end, so Shutdown below can
	// complete the in-flight SSE responses instead of severing them.
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(stdout, "schedserver drain: cancelled remaining jobs (%v)\n", err)
	}
	// After the drain every handler ends promptly (event streams flush
	// their terminal events), so Shutdown needs only a short grace of its
	// own — the drain budget may already be spent.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		_ = httpSrv.Close()
	}
	fmt.Fprintln(stdout, "schedserver stopped")
	return nil
}
