package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

// TestRunThenDiffCleanPass: a real (shrunk) smoke run writes a loadable
// report that diffs cleanly against itself.
func TestRunThenDiffCleanPass(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "suite.json")
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"run", "-profile", "smoke", "-seeds", "1", "-models", "serial", "-out", out,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := bench.LoadReport(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) == 0 || rep.Profile != "smoke" {
		t.Fatalf("report: %+v", rep)
	}
	buf.Reset()
	if err := run(context.Background(), []string{
		"diff", "-baseline", out, "-report", out,
	}, &buf); err != nil {
		t.Fatalf("self-diff failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "no regressions") {
		t.Errorf("diff output: %s", buf.String())
	}
}

// TestRunWritesProfiles: -cpuprofile/-memprofile produce non-empty pprof
// files alongside the report.
func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"run", "-profile", "smoke", "-seeds", "1", "-models", "serial", "-out", "-",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// TestDiffFailsOnInjectedRegression: a fabricated baseline whose quality
// the current report misses by far must make diff return an error (the CI
// gate's nonzero exit).
func TestDiffFailsOnInjectedRegression(t *testing.T) {
	dir := t.TempDir()
	base := &bench.Report{
		Suite: "benchsuite", Profile: "smoke",
		Entries: []bench.Entry{
			{Instance: "ft06", Model: "island", Best: 55, Mean: 56, EvalsPerSec: 1e5},
		},
	}
	worse := &bench.Report{
		Suite: "benchsuite", Profile: "smoke",
		Entries: []bench.Entry{
			{Instance: "ft06", Model: "island", Best: 80, Mean: 85, EvalsPerSec: 1e5},
		},
	}
	basePath := filepath.Join(dir, "base.json")
	worsePath := filepath.Join(dir, "worse.json")
	if err := bench.SaveReport(base, basePath); err != nil {
		t.Fatal(err)
	}
	if err := bench.SaveReport(worse, worsePath); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"diff", "-baseline", basePath, "-report", worsePath,
	}, &buf)
	if err == nil {
		t.Fatalf("injected regression passed diff:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "regressions") {
		t.Errorf("error %q does not name regressions", err)
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Errorf("deltas not printed:\n%s", buf.String())
	}

	// The same drift is tolerated when the caller widens the gate.
	buf.Reset()
	if err := run(context.Background(), []string{
		"diff", "-baseline", basePath, "-report", worsePath,
		"-quality-tol", "0.6", "-mean-tol", "0.6",
	}, &buf); err != nil {
		t.Errorf("widened tolerance still failed: %v", err)
	}
}

// TestUsageErrors: malformed invocations fail without panicking.
func TestUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{},
		{"frobnicate"},
		{"diff"},
		{"run", "-profile", "no-such-profile"},
		{"diff", "-report", "does-not-exist.json"},
	} {
		if err := run(context.Background(), args, &buf); err == nil {
			t.Errorf("args %v succeeded", args)
		}
	}
	// -h prints usage and succeeds; a bad flag fails with a terse error.
	for _, sub := range []string{"run", "diff"} {
		if err := run(context.Background(), []string{sub, "-h"}, &buf); err != nil {
			t.Errorf("%s -h: %v", sub, err)
		}
		if err := run(context.Background(), []string{sub, "-no-such-flag"}, &buf); err == nil {
			t.Errorf("%s with bad flag succeeded", sub)
		}
	}
}
