// Command benchsuite runs the end-to-end benchmark suite over the
// instance registry and diffs suite reports for CI regression gating.
//
//	benchsuite run  -profile smoke -out BENCH_suite.json
//	benchsuite run  -profile smoke -cpuprofile cpu.pprof -memprofile mem.pprof
//	benchsuite diff -baseline BENCH_suite.json -report /tmp/suite.json
//
// run sweeps the profile's instances x models x seeds through the solver
// pool and writes the structured JSON report. diff compares a fresh report
// against a committed baseline and exits nonzero when solution quality
// (or, if enabled, throughput) regresses beyond tolerance; wall-clock
// metrics never gate by default, so the check is safe on shared runners.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"repro/internal/bench"
)

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
}

// errRegression marks a diff that found regressions (a clean failure, not
// a usage error).
var errRegression = errors.New("regressions detected against baseline")

// errBadFlags signals a flag parse failure the FlagSet already reported;
// main prints it once, tersely, instead of duplicating the detail.
var errBadFlags = errors.New("invalid flags (see usage above)")

// parseFlags maps -h/-help to success (usage was printed, exit 0) and
// parse failures to errBadFlags.
func parseFlags(fs *flag.FlagSet, args []string) (help bool, err error) {
	switch err := fs.Parse(args); {
	case err == nil:
		return false, nil
	case errors.Is(err, flag.ErrHelp):
		return true, nil
	default:
		return false, errBadFlags
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: benchsuite <run|diff> [flags]; profiles: %s",
			strings.Join(bench.ProfileNames(), ", "))
	}
	switch args[0] {
	case "run":
		return runSuite(ctx, args[1:], stdout)
	case "diff":
		return diffSuite(args[1:], stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (want run or diff)", args[0])
	}
}

func runSuite(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	profile := fs.String("profile", "smoke", "suite profile: "+strings.Join(bench.ProfileNames(), ", "))
	out := fs.String("out", "BENCH_suite.json", "report output path ('-' for stdout only)")
	seeds := fs.Int("seeds", 0, "override the profile's seeds per cell (0: profile default)")
	models := fs.String("models", "", "override the profile's models (comma-separated)")
	poolWorkers := fs.Int("pool-workers", 0, "solver pool workers (0: GOMAXPROCS; 1 for calm wall clocks)")
	parallelStep := fs.Int("parallel-step", 0, "measure sharded engine-step scaling at this worker count (0: off)")
	fed := fs.Int("federation", 0, "measure the distributed island federation on a loopback fleet of this many nodes (0: off)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile after the sweep to this file")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	opts := bench.Options{Profile: *profile, Seeds: *seeds, PoolWorkers: *poolWorkers, ParallelStep: *parallelStep, Federation: *fed}
	if *models != "" {
		opts.Models = strings.Split(*models, ",")
	}
	stopCPU, err := bench.StartCPUProfile(*cpuProfile)
	if err != nil {
		return err
	}
	report, runErr := bench.Run(ctx, opts)
	if err := stopCPU(); err != nil {
		return err
	}
	if err := bench.WriteHeapProfile(*memProfile); err != nil {
		return err
	}
	if runErr != nil {
		return runErr
	}
	printReport(stdout, report)
	if *out != "-" {
		if err := bench.SaveReport(report, *out); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	return nil
}

func printReport(w io.Writer, r *bench.Report) {
	fmt.Fprintf(w, "suite %s, profile %s (%s/%s, %d CPUs, %s)\n",
		r.Suite, r.Profile, r.Host.GOOS, r.Host.GOARCH, r.Host.CPUs, r.Host.GoVersion)
	fmt.Fprintf(w, "%-10s %-9s %10s %10s %10s %-10s %8s %12s %8s\n",
		"instance", "model", "best", "mean", "ref", "refkind", "gap%", "evals/s", "speedup")
	for _, e := range r.Entries {
		fmt.Fprintf(w, "%-10s %-9s %10.0f %10.1f %10.0f %-10s %8.1f %12.0f %8.2f\n",
			e.Instance, e.Model, e.Best, e.Mean, e.Reference, e.RefKind,
			100*e.Gap, e.EvalsPerSec, e.SpeedupVsSerial)
	}
	if p := r.Parallel; p != nil {
		fmt.Fprintf(w, "parallel-step %s pop=%d: 1 worker %.0f ns/step, %d workers %.0f ns/step (%.2fx on %d CPUs)\n",
			p.Instance, p.Pop, p.StepNsOneWorker, p.Workers, p.StepNsWorkers, p.Speedup, p.CPUs)
	}
	if f := r.Federation; f != nil {
		fmt.Fprintf(w, "federation %s fleet=%d islands=%d: single best %.0f (%.0f ms), federated best %.0f (%.0f ms, %.2fx overhead, %d migrants, replayed=%v)\n",
			f.Instance, f.Fleet, f.Islands, f.BestSingle, f.WallMSSingle,
			f.BestFederated, f.WallMSFederated, f.OverheadRatio, f.MigrantsSent, f.Replayed)
	}
}

func diffSuite(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "BENCH_suite.json", "committed baseline report")
	reportPath := fs.String("report", "", "current report to compare (required)")
	qualityTol := fs.Float64("quality-tol", 0.05, "allowed relative worsening of best objective (0: any worsening fails; <0: informational)")
	meanTol := fs.Float64("mean-tol", 0.05, "allowed relative worsening of mean objective (0: any worsening fails; <0: informational)")
	throughputTol := fs.Float64("throughput-tol", -1, "allowed relative evals/sec drop (<0: informational only)")
	allowMissing := fs.Bool("allow-missing", false, "do not fail on baseline cells missing from the report")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	if *reportPath == "" {
		return errors.New("diff: -report is required")
	}
	baseline, err := bench.LoadReport(*baselinePath)
	if err != nil {
		return err
	}
	current, err := bench.LoadReport(*reportPath)
	if err != nil {
		return err
	}
	if baseline.Profile != current.Profile {
		// Different profiles run different budgets: cells are incomparable
		// and missing-cell regressions are expected. Warn loudly; the
		// missing/quality gates below will do the failing.
		fmt.Fprintf(stdout, "warning: comparing profile %q against baseline profile %q — budgets differ, results are not comparable\n",
			current.Profile, baseline.Profile)
	}
	tol := bench.Tolerance{
		QualityFrac:    *qualityTol,
		MeanFrac:       *meanTol,
		ThroughputFrac: *throughputTol,
		AllowMissing:   *allowMissing,
	}
	deltas, regressions := bench.Compare(baseline, current, tol)
	for _, d := range deltas {
		fmt.Fprintln(stdout, d)
	}
	if regressions > 0 {
		return fmt.Errorf("%d %w", regressions, errRegression)
	}
	fmt.Fprintf(stdout, "no regressions across %d compared cells\n", len(baseline.Entries))
	return nil
}
