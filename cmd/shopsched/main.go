// Command shopsched solves a shop scheduling instance with any of the
// survey's GA models and prints the best schedule with an ASCII Gantt chart.
//
// Usage examples:
//
//	shopsched -instance ft06 -model island -islands 4 -generations 200
//	shopsched -problem flow -jobs 20 -machines 5 -seed 42 -model ms -workers 4
//	shopsched -instance path/to/instance.json -model cellular
//	shopsched -problem open -jobs 8 -machines 8 -model serial
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/decode"
	"repro/internal/hybrid"
	"repro/internal/island"
	"repro/internal/masterslave"
	"repro/internal/rng"
	"repro/internal/shop"
	"repro/internal/shopga"
)

func main() {
	var (
		instPath    = flag.String("instance", "", "instance: 'ft06' or a JSON file path (overrides -problem)")
		problem     = flag.String("problem", "job", "generated problem kind: flow, job, open, fjs, ffs")
		jobs        = flag.Int("jobs", 10, "jobs for generated instances")
		machines    = flag.Int("machines", 5, "machines for generated instances")
		seed        = flag.Int("seed", 12345, "instance generation seed")
		model       = flag.String("model", "serial", "GA model: serial, ms, island, cellular, hybrid")
		workers     = flag.Int("workers", 4, "slaves for -model ms")
		islands     = flag.Int("islands", 4, "islands for -model island/hybrid")
		pop         = flag.Int("pop", 80, "population (total across islands)")
		generations = flag.Int("generations", 150, "generation budget")
		gaSeed      = flag.Uint64("ga-seed", 1, "GA master seed")
		gantt       = flag.Bool("gantt", true, "print the Gantt chart")
	)
	flag.Parse()

	in, err := buildInstance(*instPath, *problem, *jobs, *machines, int32(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "shopsched:", err)
		os.Exit(2)
	}
	fmt.Printf("instance %s: %s, %d jobs x %d machines (%d operations)\n",
		in.Name, in.Kind, in.NumJobs(), in.NumMachines, in.TotalOps())
	fmt.Printf("heuristic reference makespan: %.0f\n", decode.Reference(in, shop.Makespan))

	best, evals := solve(in, *model, *workers, *islands, *pop, *generations, *gaSeed)
	fmt.Printf("model %s: best makespan %.0f after %d evaluations\n", *model, best.obj, evals)
	if *gantt {
		fmt.Print(best.schedule.Gantt(96))
	}
	if err := best.schedule.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "shopsched: INVALID SCHEDULE:", err)
		os.Exit(1)
	}
	fmt.Println("schedule validated: all Table I feasibility conditions hold")
}

func buildInstance(path, kind string, jobs, machines int, seed int32) (*shop.Instance, error) {
	switch {
	case path == "ft06":
		return shop.FT06(), nil
	case path != "":
		return shop.LoadFile(path)
	}
	switch kind {
	case "flow":
		return shop.GenerateFlowShop("gen-flow", jobs, machines, seed), nil
	case "job":
		return shop.GenerateJobShop("gen-job", jobs, machines, seed, seed+1), nil
	case "open":
		return shop.GenerateOpenShop("gen-open", jobs, machines, seed), nil
	case "fjs":
		return shop.GenerateFlexibleJobShop("gen-fjs", jobs, machines, machines, 3, seed), nil
	case "ffs":
		per := machines / 2
		if per < 1 {
			per = 1
		}
		return shop.GenerateFlexibleFlowShop("gen-ffs", jobs, []int{per, machines - per}, true, seed), nil
	default:
		return nil, fmt.Errorf("unknown problem kind %q", kind)
	}
}

type solution struct {
	obj      float64
	schedule *shop.Schedule
}

func solve(in *shop.Instance, model string, workers, islands_, pop, gens int, seed uint64) (solution, int64) {
	r := rng.New(seed)
	switch in.Kind {
	case shop.FlexibleFlowShop, shop.FlexibleJobShop:
		prob := shopga.FlexibleProblem(in, shop.Makespan)
		ops := shopga.FlexOps(in)
		res := island.New(r, island.Config[shopga.FlexGenome]{
			Islands: islands_, SubPop: pop / islands_, Interval: 5, Epochs: gens / 5,
			Engine:  core.Config[shopga.FlexGenome]{Ops: ops, Elite: 1},
			Problem: func(int) core.Problem[shopga.FlexGenome] { return prob },
		}).Run()
		g := res.Best.Genome
		return solution{obj: res.Best.Obj, schedule: decode.Flexible(in, g.Assign, g.Seq, nil)}, res.Evaluations
	}

	prob := seqProblem(in)
	ops := seqOps(in)
	mkSchedule := func(g []int) *shop.Schedule { return decode.Any(in, g) }
	cfg := core.Config[[]int]{
		Pop: pop, Elite: 1, Ops: ops,
		Term: core.Termination{MaxGenerations: gens},
	}
	switch model {
	case "serial":
		res := core.New(prob, r, cfg).Run()
		return solution{res.Best.Obj, mkSchedule(res.Best.Genome)}, res.Evaluations
	case "ms":
		res := masterslave.RunPool(prob, r, cfg, workers)
		return solution{res.Best.Obj, mkSchedule(res.Best.Genome)}, res.Evaluations
	case "island":
		res := island.New(r, island.Config[[]int]{
			Islands: islands_, SubPop: pop / islands_, Interval: 5, Epochs: gens / 5,
			Engine:  cfg,
			Problem: func(int) core.Problem[[]int] { return prob },
		}).Run()
		return solution{res.Best.Obj, mkSchedule(res.Best.Genome)}, res.Evaluations
	case "cellular":
		side := 1
		for side*side < pop {
			side++
		}
		res := cellular.New(prob, r, cellular.Config[[]int]{
			Width: side, Height: side,
			Cross: ops.Cross, Mutate: ops.Mutate, ReplaceIfBetter: true,
			Generations: gens,
		}).Run()
		return solution{res.Best.Obj, mkSchedule(res.Best.Genome)}, res.Evaluations
	case "hybrid":
		res := hybrid.NewRingOfTorus(prob, r, hybrid.RingOfTorusConfig[[]int]{
			Grids: islands_, Interval: 10, Epochs: gens / 10,
			Grid: cellular.Config[[]int]{
				Width: 5, Height: 5,
				Cross: ops.Cross, Mutate: ops.Mutate, ReplaceIfBetter: true,
			},
		}).Run()
		return solution{res.Best.Obj, mkSchedule(res.Best.Genome)}, res.Evaluations
	default:
		fmt.Fprintf(os.Stderr, "shopsched: unknown model %q\n", model)
		os.Exit(2)
		return solution{}, 0
	}
}

func seqProblem(in *shop.Instance) core.Problem[[]int] {
	switch in.Kind {
	case shop.FlowShop:
		return shopga.FlowShopMakespanProblem(in)
	case shop.OpenShop:
		return shopga.OpenShopProblem(in, decode.EarliestStart, shop.Makespan)
	default:
		return shopga.JobShopProblem(in, shop.Makespan)
	}
}

func seqOps(in *shop.Instance) core.Operators[[]int] {
	if in.Kind == shop.FlowShop {
		return shopga.PermOps()
	}
	return shopga.SeqOps(in)
}
