// Command shopsched solves a shop scheduling instance with any of the
// survey's GA models and prints the best schedule with an ASCII Gantt chart.
// Models are resolved through the solver registry, so every registered
// model (serial, ms, island, cellular, hybrid, agents, qga) is available
// without command changes; instances are resolved through the shop
// benchmark registry (ft06/ft10/ft20, la01-la20, generated families) or
// loaded from JSON files.
//
// The run goes through the solver's job Service — the same Submit/Events/
// Await path the schedserver daemon serves — so -progress streams live
// improvement events while the model runs.
//
// Usage examples:
//
//	shopsched -instance ft10 -model island -islands 4 -generations 200
//	shopsched -problem flow -jobs 20 -machines 5 -seed 42 -model ms -workers 4
//	shopsched -instance path/to/instance.json -model cellular
//	shopsched -problem open -jobs 8 -machines 8 -model serial
//	shopsched -problem job -model qga -wall-ms 2000
//	shopsched -instance ft10 -model island -progress
//	shopsched -spec spec.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"repro/internal/solver"
)

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "shopsched:", err)
		os.Exit(2)
	}
}

// run is main behind a testable seam: flags in, report out, error instead
// of exit. Ctrl-C arrives through ctx; the solver then returns the best
// found so far with the run marked interrupted.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("shopsched", flag.ContinueOnError)
	var (
		specPath    = fs.String("spec", "", "JSON solver.Spec file (overrides the other flags)")
		instPath    = fs.String("instance", "", "instance: a registry name (ft06, ft10, la01, flow-sm, ...) or a JSON file path (overrides -problem)")
		problem     = fs.String("problem", "job", "generated problem kind: flow, job, open, fjs, ffs")
		jobs        = fs.Int("jobs", 10, "jobs for generated instances")
		machines    = fs.Int("machines", 5, "machines for generated instances")
		seed        = fs.Int64("seed", 12345, "instance generation seed (any int64; folded into the Taillard range)")
		model       = fs.String("model", "serial", "GA model: "+strings.Join(solver.Names(), ", "))
		encoding    = fs.String("encoding", "", "chromosome encoding: perm, seq, keys, flex (default: by kind)")
		objective   = fs.String("objective", "", "objective: makespan (default), twc, twt, twu, max-tardiness, energy")
		workers     = fs.Int("workers", 4, "slaves for -model ms / partitions for cellular")
		islands     = fs.Int("islands", 0, "islands/grids/agents for the multi-deme models")
		pop         = fs.Int("pop", 80, "population (total across islands)")
		generations = fs.Int("generations", 150, "generation budget")
		wallMS      = fs.Int64("wall-ms", 0, "wall clock budget in milliseconds (0: none)")
		gaSeed      = fs.Uint64("ga-seed", 1, "GA master seed")
		gantt       = fs.Bool("gantt", true, "print the Gantt chart")
		progress    = fs.Bool("progress", false, "stream improvement events while solving")
	)
	switch err := fs.Parse(args); {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		// Usage was printed; -h is a successful run.
		return nil
	default:
		// The FlagSet already reported the detail.
		return errors.New("invalid flags (see usage above)")
	}

	spec := solver.Spec{
		Problem: solver.ProblemSpec{
			Instance: *instPath,
			Kind:     *problem,
			Jobs:     *jobs,
			Machines: *machines,
			Seed:     *seed,
		},
		Encoding:  *encoding,
		Objective: *objective,
		Model:     *model,
		Params:    solver.Params{Pop: *pop, Workers: *workers, Islands: *islands},
		Budget:    solver.Budget{Generations: *generations, WallMillis: *wallMS},
		Seed:      *gaSeed,
	}
	if *specPath != "" {
		raw, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		spec = solver.Spec{}
		if err := json.Unmarshal(raw, &spec); err != nil {
			return fmt.Errorf("parsing %s: %w", *specPath, err)
		}
	}

	in, err := solver.BuildInstance(spec.Problem)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "instance %s: %s, %d jobs x %d machines (%d operations)\n",
		in.Name, in.Kind, in.NumJobs(), in.NumMachines, in.TotalOps())

	// Submit through the job service (the API the schedserver daemon
	// serves); Validate-aggregated field errors surface one per line.
	svc := solver.NewService(1)
	job, err := svc.Submit(ctx, spec)
	if err != nil {
		var verr *solver.ValidationError
		if errors.As(err, &verr) {
			for _, f := range verr.Fields {
				fmt.Fprintf(stdout, "invalid: %s: %s\n", f.Path, f.Msg)
			}
			return errors.New("invalid spec (see above)")
		}
		return err
	}
	if *progress {
		// Subscribing costs the engines their no-observer fast path, so
		// only stream when asked.
		for ev := range job.Events() {
			if ev.Type == solver.EventImproved {
				fmt.Fprintf(stdout, "gen %5d: best %.0f\n", ev.Generation, ev.BestObjective)
			}
		}
	}
	res, err := job.Await(ctx)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// Ctrl-C: the run stops at its next generation boundary; collect
		// the partial best instead of discarding it.
		res, err = job.Await(context.Background())
	}
	if err != nil {
		return err
	}
	state := ""
	if res.Canceled {
		state = " (interrupted)"
	}
	fmt.Fprintf(stdout, "model %s [%s]: best %.0f after %d evaluations in %s%s\n",
		res.Model, res.Encoding, res.BestObjective, res.Evaluations,
		res.RoundedElapsed(), state)
	if res.Reference > 0 {
		// The reference rides on the Result, resolved once at solve end.
		fmt.Fprintf(stdout, "%s reference objective: %.0f (gap %+.1f%%)\n",
			res.RefKind, res.Reference, 100*res.Gap)
	}
	if *gantt {
		fmt.Fprint(stdout, res.Schedule.Gantt(96))
	}
	fmt.Fprintln(stdout, "schedule validated: all Table I feasibility conditions hold")
	return nil
}
