// Command shopsched solves a shop scheduling instance with any of the
// survey's GA models and prints the best schedule with an ASCII Gantt chart.
// Models are resolved through the solver registry, so every registered
// model (serial, ms, island, cellular, hybrid, agents, qga) is available
// without command changes.
//
// Usage examples:
//
//	shopsched -instance ft06 -model island -islands 4 -generations 200
//	shopsched -problem flow -jobs 20 -machines 5 -seed 42 -model ms -workers 4
//	shopsched -instance path/to/instance.json -model cellular
//	shopsched -problem open -jobs 8 -machines 8 -model serial
//	shopsched -problem job -model qga -wall-ms 2000
//	shopsched -spec spec.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/solver"
)

func main() {
	var (
		specPath    = flag.String("spec", "", "JSON solver.Spec file (overrides the other flags)")
		instPath    = flag.String("instance", "", "instance: 'ft06' or a JSON file path (overrides -problem)")
		problem     = flag.String("problem", "job", "generated problem kind: flow, job, open, fjs, ffs")
		jobs        = flag.Int("jobs", 10, "jobs for generated instances")
		machines    = flag.Int("machines", 5, "machines for generated instances")
		seed        = flag.Int("seed", 12345, "instance generation seed")
		model       = flag.String("model", "serial", "GA model: "+strings.Join(solver.Names(), ", "))
		encoding    = flag.String("encoding", "", "chromosome encoding: perm, seq, keys, flex (default: by kind)")
		objective   = flag.String("objective", "", "objective: makespan (default), twc, twt, twu, max-tardiness, energy")
		workers     = flag.Int("workers", 4, "slaves for -model ms / partitions for cellular")
		islands     = flag.Int("islands", 0, "islands/grids/agents for the multi-deme models")
		pop         = flag.Int("pop", 80, "population (total across islands)")
		generations = flag.Int("generations", 150, "generation budget")
		wallMS      = flag.Int64("wall-ms", 0, "wall clock budget in milliseconds (0: none)")
		gaSeed      = flag.Uint64("ga-seed", 1, "GA master seed")
		gantt       = flag.Bool("gantt", true, "print the Gantt chart")
	)
	flag.Parse()

	spec := solver.Spec{
		Problem: solver.ProblemSpec{
			Instance: *instPath,
			Kind:     *problem,
			Jobs:     *jobs,
			Machines: *machines,
			Seed:     int32(*seed),
		},
		Encoding:  *encoding,
		Objective: *objective,
		Model:     *model,
		Params:    solver.Params{Pop: *pop, Workers: *workers, Islands: *islands},
		Budget:    solver.Budget{Generations: *generations, WallMillis: *wallMS},
		Seed:      *gaSeed,
	}
	if *specPath != "" {
		raw, err := os.ReadFile(*specPath)
		if err != nil {
			fail(err)
		}
		spec = solver.Spec{}
		if err := json.Unmarshal(raw, &spec); err != nil {
			fail(fmt.Errorf("parsing %s: %w", *specPath, err))
		}
	}

	in, err := solver.BuildInstance(spec.Problem)
	if err != nil {
		fail(err)
	}
	fmt.Printf("instance %s: %s, %d jobs x %d machines (%d operations)\n",
		in.Name, in.Kind, in.NumJobs(), in.NumMachines, in.TotalOps())
	if ref, err := solver.ReferenceFor(in, spec.Objective); err == nil {
		fmt.Printf("heuristic reference objective: %.0f\n", ref)
	}

	// Ctrl-C cancels the run; the solver returns the best found so far.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	res, err := solver.Solve(ctx, spec)
	if err != nil {
		fail(err)
	}
	state := ""
	if res.Canceled {
		state = " (interrupted)"
	}
	fmt.Printf("model %s [%s]: best %.0f after %d evaluations in %s%s\n",
		res.Model, res.Encoding, res.BestObjective, res.Evaluations,
		res.RoundedElapsed(), state)
	if *gantt {
		fmt.Print(res.Schedule.Gantt(96))
	}
	fmt.Println("schedule validated: all Table I feasibility conditions hold")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "shopsched:", err)
	os.Exit(2)
}
