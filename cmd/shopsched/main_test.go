package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/shop"
	"repro/internal/solver"
)

// TestEveryRegisteredModelProducesValidSchedule drives the exact path main
// takes — a Spec through the registry — for every registered model, so a
// new model registration is automatically covered by the command's tests.
func TestEveryRegisteredModelProducesValidSchedule(t *testing.T) {
	for _, model := range solver.Names() {
		spec := solver.Spec{
			Problem: solver.ProblemSpec{Kind: "job", Jobs: 6, Machines: 4, Seed: 42},
			Model:   model,
			Params:  solver.Params{Pop: 26, Workers: 2, Islands: 2},
			Budget:  solver.Budget{Generations: 20},
			Seed:    1,
		}
		res, err := solver.Solve(context.Background(), spec)
		if err != nil {
			t.Errorf("%s: %v", model, err)
			continue
		}
		if res.Evaluations <= 0 {
			t.Errorf("%s: no evaluations", model)
		}
		if res.Schedule == nil {
			t.Fatalf("%s: nil schedule", model)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Errorf("%s: invalid schedule: %v", model, err)
		}
		if model != "qga" {
			if got := float64(res.Schedule.Makespan()); got != res.BestObjective {
				t.Errorf("%s: objective %v != schedule makespan %v", model, res.BestObjective, got)
			}
		}
	}
}

// TestFlexibleRoute: the flexible kinds route through the flex encoding.
func TestFlexibleRoute(t *testing.T) {
	spec := solver.Spec{
		Problem: solver.ProblemSpec{Kind: "fjs", Jobs: 4, Machines: 3, Seed: 7},
		Model:   "island",
		Params:  solver.Params{Pop: 24, Islands: 2},
		Budget:  solver.Budget{Generations: 20},
		Seed:    1,
	}
	res, err := solver.Solve(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Encoding != "flex" {
		t.Errorf("encoding %q", res.Encoding)
	}
	if !strings.Contains(res.Kind, "flexible") {
		t.Fatalf("kind = %v", res.Kind)
	}
}

// TestFT06Route: the embedded benchmark resolves by name through a Spec.
func TestFT06Route(t *testing.T) {
	in, err := solver.BuildInstance(solver.ProblemSpec{Instance: "ft06"})
	if err != nil || in.Name != "ft06" || in.Kind != shop.JobShop {
		t.Fatalf("ft06 lookup: %v %v", in, err)
	}
}

// TestSpecFileInput drives the -spec JSON path end to end: a Spec written
// to disk is parsed, solved and reported, and the registry instance named
// inside it resolves.
func TestSpecFileInput(t *testing.T) {
	spec := solver.Spec{
		Problem: solver.ProblemSpec{Instance: "la01"},
		Model:   "island",
		Params:  solver.Params{Pop: 40, Islands: 2},
		Budget:  solver.Budget{Generations: 30},
		Seed:    3,
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-spec", path, "-gantt=false"}, &out); err != nil {
		t.Fatalf("run -spec: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"instance la01: job-shop, 10 jobs x 5 machines",
		"optimal reference objective: 666",
		"model island",
		"schedule validated",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestSpecFileErrors: missing and malformed spec files fail cleanly, as
// does garbage inside an otherwise valid JSON document.
func TestSpecFileErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-spec", "no-such-spec.json"}, &out); err == nil {
		t.Error("missing spec file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-spec", bad}, &out); err == nil {
		t.Error("malformed spec accepted")
	}
	unknown := filepath.Join(t.TempDir(), "unknown.json")
	if err := os.WriteFile(unknown, []byte(`{"problem":{"instance":"ft06"},"model":"warp-drive"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-spec", unknown}, &out); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run(context.Background(), []string{"-h"}, &out); err != nil {
		t.Errorf("-h is a successful run, got %v", err)
	}
	if err := run(context.Background(), []string{"-no-such-flag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
