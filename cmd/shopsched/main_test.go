package main

import (
	"context"
	"strings"
	"testing"

	"repro/internal/shop"
	"repro/internal/solver"
)

// TestEveryRegisteredModelProducesValidSchedule drives the exact path main
// takes — a Spec through the registry — for every registered model, so a
// new model registration is automatically covered by the command's tests.
func TestEveryRegisteredModelProducesValidSchedule(t *testing.T) {
	for _, model := range solver.Names() {
		spec := solver.Spec{
			Problem: solver.ProblemSpec{Kind: "job", Jobs: 6, Machines: 4, Seed: 42},
			Model:   model,
			Params:  solver.Params{Pop: 26, Workers: 2, Islands: 2},
			Budget:  solver.Budget{Generations: 20},
			Seed:    1,
		}
		res, err := solver.Solve(context.Background(), spec)
		if err != nil {
			t.Errorf("%s: %v", model, err)
			continue
		}
		if res.Evaluations <= 0 {
			t.Errorf("%s: no evaluations", model)
		}
		if res.Schedule == nil {
			t.Fatalf("%s: nil schedule", model)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Errorf("%s: invalid schedule: %v", model, err)
		}
		if model != "qga" {
			if got := float64(res.Schedule.Makespan()); got != res.BestObjective {
				t.Errorf("%s: objective %v != schedule makespan %v", model, res.BestObjective, got)
			}
		}
	}
}

// TestFlexibleRoute: the flexible kinds route through the flex encoding.
func TestFlexibleRoute(t *testing.T) {
	spec := solver.Spec{
		Problem: solver.ProblemSpec{Kind: "fjs", Jobs: 4, Machines: 3, Seed: 7},
		Model:   "island",
		Params:  solver.Params{Pop: 24, Islands: 2},
		Budget:  solver.Budget{Generations: 20},
		Seed:    1,
	}
	res, err := solver.Solve(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Encoding != "flex" {
		t.Errorf("encoding %q", res.Encoding)
	}
	if !strings.Contains(res.Kind, "flexible") {
		t.Fatalf("kind = %v", res.Kind)
	}
}

// TestFT06Route: the embedded benchmark resolves by name through a Spec.
func TestFT06Route(t *testing.T) {
	in, err := solver.BuildInstance(solver.ProblemSpec{Instance: "ft06"})
	if err != nil || in.Name != "ft06" || in.Kind != shop.JobShop {
		t.Fatalf("ft06 lookup: %v %v", in, err)
	}
}
