package main

import (
	"strings"
	"testing"

	"repro/internal/shop"
)

func TestBuildInstanceKinds(t *testing.T) {
	cases := map[string]shop.Kind{
		"flow": shop.FlowShop,
		"job":  shop.JobShop,
		"open": shop.OpenShop,
		"fjs":  shop.FlexibleJobShop,
		"ffs":  shop.FlexibleFlowShop,
	}
	for kind, want := range cases {
		in, err := buildInstance("", kind, 4, 3, 99)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if in.Kind != want {
			t.Errorf("%s: kind %v", kind, in.Kind)
		}
		if err := in.Validate(); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
	if _, err := buildInstance("", "nope", 4, 3, 99); err == nil {
		t.Error("unknown kind accepted")
	}
	in, err := buildInstance("ft06", "", 0, 0, 0)
	if err != nil || in.Name != "ft06" {
		t.Errorf("ft06 lookup failed: %v %v", in, err)
	}
	if _, err := buildInstance("/does/not/exist.json", "", 0, 0, 0); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuildInstanceFromFile(t *testing.T) {
	in := shop.GenerateJobShop("file-test", 3, 2, 5, 6)
	path := t.TempDir() + "/i.json"
	if err := in.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := buildInstance(path, "", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "file-test" {
		t.Errorf("loaded %q", back.Name)
	}
}

func TestSolveEveryModelProducesValidSchedule(t *testing.T) {
	in, _ := buildInstance("", "job", 6, 4, 42)
	for _, model := range []string{"serial", "ms", "island", "cellular", "hybrid"} {
		sol, evals := solve(in, model, 2, 2, 26, 20, 1)
		if evals <= 0 {
			t.Errorf("%s: no evaluations", model)
		}
		if sol.schedule == nil {
			t.Fatalf("%s: nil schedule", model)
		}
		if err := sol.schedule.Validate(); err != nil {
			t.Errorf("%s: invalid schedule: %v", model, err)
		}
		if got := float64(sol.schedule.Makespan()); got != sol.obj {
			t.Errorf("%s: objective %v != schedule makespan %v", model, sol.obj, got)
		}
	}
}

func TestSolveFlexibleRoute(t *testing.T) {
	in, _ := buildInstance("", "fjs", 4, 3, 7)
	sol, _ := solve(in, "island", 2, 2, 24, 20, 1)
	if err := sol.schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(in.Kind.String(), "flexible") {
		t.Fatalf("kind = %v", in.Kind)
	}
}
