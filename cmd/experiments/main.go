// Command experiments regenerates every table and figure-equivalent of the
// survey reproduction (see DESIGN.md, "Per-experiment index").
//
// Usage:
//
//	experiments                 # run everything, aligned text to stdout
//	experiments -exp T3a,T5f    # run a subset
//	experiments -format md      # GitHub Markdown output (for EXPERIMENTS.md)
//	experiments -format csv     # CSV output
//	experiments -list           # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		which  = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		format = flag.String("format", "text", "output format: text, md, csv")
		list   = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []exp.Experiment
	if *which == "all" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*which, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		tabs := e.Run()
		fmt.Printf("=== %s — %s (%s)\n\n", e.ID, e.Title, time.Since(start).Round(time.Millisecond))
		for _, tb := range tabs {
			switch *format {
			case "md":
				fmt.Println(tb.Markdown())
			case "csv":
				fmt.Println(tb.CSV())
			default:
				fmt.Println(tb.Render())
			}
		}
	}
}
