// Command experiments regenerates every table and figure-equivalent of the
// survey reproduction (see DESIGN.md, "Per-experiment index"), and can run
// ad-hoc cross-model comparisons through the unified solver layer.
//
// Usage:
//
//	experiments                 # run everything, aligned text to stdout
//	experiments -exp T3a,T5f    # run a subset
//	experiments -format md      # GitHub Markdown output (for EXPERIMENTS.md)
//	experiments -format csv     # CSV output
//	experiments -list           # list experiment IDs
//
//	experiments -compare all -instance ft06 -seeds 5
//	                            # every registered model x 5 seeds on ft06,
//	                            # solved concurrently by a solver.Pool
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/solver"
	"repro/internal/tables"
)

func main() {
	var (
		which  = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		format = flag.String("format", "text", "output format: text, md, csv")
		list   = flag.Bool("list", false, "list experiment IDs and exit")

		compare     = flag.String("compare", "", "comma-separated solver models (or 'all'): run a cross-model comparison instead of the survey experiments")
		instance    = flag.String("instance", "ft06", "comparison instance: 'ft06' or a JSON file path")
		seeds       = flag.Int("seeds", 3, "comparison seeds per model")
		pop         = flag.Int("pop", 80, "comparison population")
		generations = flag.Int("generations", 100, "comparison generation budget")
		workers     = flag.Int("pool-workers", 0, "solver.Pool width (0: GOMAXPROCS)")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}

	if *compare != "" {
		tb, err := compareModels(*compare, *instance, *seeds, *pop, *generations, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		emit(tb, *format)
		return
	}

	var selected []exp.Experiment
	if *which == "all" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*which, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		tabs := e.Run()
		fmt.Printf("=== %s — %s (%s)\n\n", e.ID, e.Title, time.Since(start).Round(time.Millisecond))
		for _, tb := range tabs {
			emit(tb, *format)
		}
	}
}

// compareModels races every requested model on one instance at equal
// budgets: models x seeds Specs batched through one solver.Pool.
func compareModels(models, instance string, seeds, pop, generations, workers int) (*tables.Table, error) {
	if seeds < 1 {
		return nil, fmt.Errorf("-seeds must be >= 1, got %d", seeds)
	}
	var names []string
	if models == "all" {
		names = solver.Names()
	} else {
		for _, m := range strings.Split(models, ",") {
			names = append(names, strings.TrimSpace(m))
		}
	}
	var specs []solver.Spec
	for _, m := range names {
		for s := 0; s < seeds; s++ {
			specs = append(specs, solver.Spec{
				Problem: solver.ProblemSpec{Instance: instance},
				Model:   m,
				Params:  solver.Params{Pop: pop},
				Budget:  solver.Budget{Generations: generations},
				Seed:    uint64(s + 1),
			})
		}
	}
	start := time.Now()
	items := (&solver.Pool{Workers: workers, BaseSeed: 1}).Solve(context.Background(), specs)
	elapsed := time.Since(start)

	tb := &tables.Table{
		ID:      "compare",
		Title:   fmt.Sprintf("Cross-model comparison on %s (%d seeds, %d generations, pop %d)", instance, seeds, generations, pop),
		Columns: []string{"model", "encoding", "best", "mean best", "mean evals", "mean ms/run"},
	}
	for i, m := range names {
		var best, sumBest, sumEvals, sumMS float64
		n := 0
		for _, it := range items[i*seeds : (i+1)*seeds] {
			if it.Err != nil {
				return nil, fmt.Errorf("model %s: %w", m, it.Err)
			}
			r := it.Result
			if n == 0 || r.BestObjective < best {
				best = r.BestObjective
			}
			sumBest += r.BestObjective
			sumEvals += float64(r.Evaluations)
			sumMS += float64(r.Elapsed.Milliseconds())
			n++
		}
		enc := items[i*seeds].Result.Encoding
		tb.AddRow(m, enc,
			fmt.Sprintf("%.0f", best),
			fmt.Sprintf("%.1f", sumBest/float64(n)),
			fmt.Sprintf("%.0f", sumEvals/float64(n)),
			fmt.Sprintf("%.1f", sumMS/float64(n)))
	}
	tb.Note("%d runs solved concurrently by solver.Pool in %s wall time", len(specs), elapsed.Round(time.Millisecond))
	return tb, nil
}

func emit(tb *tables.Table, format string) {
	switch format {
	case "md":
		fmt.Println(tb.Markdown())
	case "csv":
		fmt.Println(tb.CSV())
	default:
		fmt.Println(tb.Render())
	}
}
